//! CART regression trees (variance-reduction splits).
//!
//! These are the base learners of the paper's "decision-tree based Random
//! Forest" (§3.1, Equation 1).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::Dataset;
use crate::error::MlError;

/// Hyperparameters for one regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples a node needs before it may split.
    pub min_samples_split: usize,
    /// Minimum samples each child must keep.
    pub min_samples_leaf: usize,
    /// Features considered per split; `None` considers all (plain CART),
    /// `Some(m)` samples `m` at random (random-forest style).
    pub max_features: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 16,
            min_samples_split: 4,
            min_samples_leaf: 2,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Sentinel in [`FlatTree::feature`] marking a leaf slot.
const LEAF: u16 = u16::MAX;

/// The fitted tree compiled into a flat struct-of-arrays layout.
///
/// Node *i* is a leaf when `feature[i] == LEAF`, in which case
/// `threshold[i]` holds the leaf value inline. Otherwise `children[i]` is
/// the left-child index and the right child sits at `children[i] + 1`:
/// the compiler renumbers nodes so siblings are always adjacent, which
/// keeps a root-to-leaf walk on three parallel arrays instead of chasing
/// an enum through a pointer-sized tag per node.
#[derive(Debug, Clone)]
struct FlatTree {
    feature: Vec<u16>,
    threshold: Vec<f64>,
    children: Vec<u32>,
}

impl FlatTree {
    /// Compiles the builder's `Node` tree (root at index 0) into the flat
    /// layout. Values are copied verbatim, so flat traversal is
    /// bit-identical to the recursive enum walk.
    fn compile(nodes: &[Node]) -> FlatTree {
        let n = nodes.len();
        let mut flat = FlatTree {
            feature: vec![0; n],
            threshold: vec![0.0; n],
            children: vec![0; n],
        };
        // Worklist of (enum index, flat index); children are allocated in
        // adjacent pairs so only the left index needs storing.
        let mut next_free = 1u32;
        let mut work = vec![(0usize, 0u32)];
        while let Some((src, dst)) = work.pop() {
            let dst_usize = dst as usize;
            match nodes[src] {
                Node::Leaf { value } => {
                    flat.feature[dst_usize] = LEAF;
                    flat.threshold[dst_usize] = value;
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    flat.feature[dst_usize] =
                        u16::try_from(feature).expect("feature index fits u16");
                    flat.threshold[dst_usize] = threshold;
                    flat.children[dst_usize] = next_free;
                    work.push((left, next_free));
                    work.push((right, next_free + 1));
                    next_free += 2;
                }
            }
        }
        debug_assert_eq!(next_free as usize, n);
        flat
    }

    /// Advances one walk by a single node: descends `i` for a split and
    /// returns `false`, or returns `true` when `i` rests on a leaf.
    #[inline]
    fn step(&self, x: &[f64], i: &mut usize) -> bool {
        let f = self.feature[*i];
        if f == LEAF {
            return true;
        }
        let left = self.children[*i] as usize;
        *i = if x[f as usize] <= self.threshold[*i] {
            left
        } else {
            left + 1
        };
        false
    }

    /// Walks the flat arrays to a leaf.
    #[inline]
    fn predict(&self, x: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            let f = self.feature[i];
            if f == LEAF {
                return self.threshold[i];
            }
            let left = self.children[i] as usize;
            i = if x[f as usize] <= self.threshold[i] {
                left
            } else {
                left + 1
            };
        }
    }
}

/// A fitted CART regression tree.
///
/// # Example
///
/// ```
/// use smartpick_ml::dataset::Dataset;
/// use smartpick_ml::tree::{RegressionTree, TreeParams};
///
/// let mut data = Dataset::new(vec!["x".into()]);
/// for i in 0..50 {
///     let x = i as f64;
///     data.push(vec![x], if x < 25.0 { 1.0 } else { 9.0 });
/// }
/// let tree = RegressionTree::fit(&data, &TreeParams::default(), 0)?;
/// assert!(tree.predict(&[10.0]) < 2.0);
/// assert!(tree.predict(&[40.0]) > 8.0);
/// # Ok::<(), smartpick_ml::MlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RegressionTree {
    /// The as-built node tree; kept as the reference implementation the
    /// flat layout is proven bit-identical against (see
    /// [`RegressionTree::predict_reference`]).
    nodes: Vec<Node>,
    /// The inference-path compilation of `nodes` (see [`FlatTree`]).
    flat: FlatTree,
    n_features: usize,
    /// Total variance reduction contributed by each feature (unnormalised
    /// impurity importance).
    importance: Vec<f64>,
}

struct Builder<'a> {
    xs: &'a [Vec<f64>],
    ys: &'a [f64],
    params: &'a TreeParams,
    nodes: Vec<Node>,
    importance: Vec<f64>,
}

/// Candidate split found for a node.
struct BestSplit {
    feature: usize,
    threshold: f64,
    score: f64,
}

impl<'a> Builder<'a> {
    /// Sum of squared errors around the mean for the given sample indices.
    fn sse(&self, idx: &[usize]) -> f64 {
        if idx.is_empty() {
            return 0.0;
        }
        let mean = idx.iter().map(|&i| self.ys[i]).sum::<f64>() / idx.len() as f64;
        idx.iter().map(|&i| (self.ys[i] - mean).powi(2)).sum()
    }

    fn leaf(&mut self, idx: &[usize]) -> usize {
        let value = idx.iter().map(|&i| self.ys[i]).sum::<f64>() / idx.len() as f64;
        self.nodes.push(Node::Leaf { value });
        self.nodes.len() - 1
    }

    fn best_split_on(&self, idx: &[usize], feature: usize) -> Option<BestSplit> {
        let mut order: Vec<usize> = idx.to_vec();
        order.sort_by(|&a, &b| {
            self.xs[a][feature]
                .partial_cmp(&self.xs[b][feature])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let n = order.len();
        // Prefix sums of y and y² in feature order.
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let prefix: Vec<(f64, f64)> = order
            .iter()
            .map(|&i| {
                sum += self.ys[i];
                sum2 += self.ys[i] * self.ys[i];
                (sum, sum2)
            })
            .collect();
        let (total, total2) = prefix[n - 1];
        let mut best: Option<BestSplit> = None;
        let min_leaf = self.params.min_samples_leaf.max(1);
        for k in min_leaf..=(n - min_leaf) {
            if k == n {
                break;
            }
            let xa = self.xs[order[k - 1]][feature];
            let xb = self.xs[order[k]][feature];
            if xa == xb {
                continue; // cannot split between identical values
            }
            let (ls, ls2) = prefix[k - 1];
            let rs = total - ls;
            let rs2 = total2 - ls2;
            let sse_l = ls2 - ls * ls / k as f64;
            let sse_r = rs2 - rs * rs / (n - k) as f64;
            let score = sse_l + sse_r;
            if best.as_ref().is_none_or(|b| score < b.score) {
                best = Some(BestSplit {
                    feature,
                    threshold: (xa + xb) / 2.0,
                    score,
                });
            }
        }
        best
    }

    fn build(&mut self, idx: &[usize], depth: usize, rng: &mut impl Rng) -> usize {
        let node_sse = self.sse(idx);
        if depth >= self.params.max_depth
            || idx.len() < self.params.min_samples_split
            || node_sse <= 1e-12
        {
            return self.leaf(idx);
        }

        let n_features = self.xs[0].len();
        let features: Vec<usize> = match self.params.max_features {
            None => (0..n_features).collect(),
            Some(m) => {
                let mut all: Vec<usize> = (0..n_features).collect();
                all.shuffle(rng);
                all.truncate(m.clamp(1, n_features));
                all
            }
        };

        let best = features
            .iter()
            .filter_map(|&f| self.best_split_on(idx, f))
            .min_by(|a, b| {
                a.score
                    .partial_cmp(&b.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });

        let Some(best) = best else {
            return self.leaf(idx);
        };
        let gain = node_sse - best.score;
        if gain <= 1e-12 {
            return self.leaf(idx);
        }
        self.importance[best.feature] += gain;

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
            .iter()
            .partition(|&&i| self.xs[i][best.feature] <= best.threshold);
        // Reserve the split slot, then build children.
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { value: 0.0 });
        let left = self.build(&left_idx, depth + 1, rng);
        let right = self.build(&right_idx, depth + 1, rng);
        self.nodes[slot] = Node::Split {
            feature: best.feature,
            threshold: best.threshold,
            left,
            right,
        };
        slot
    }
}

impl RegressionTree {
    /// Fits a tree on `data`.
    ///
    /// `seed` drives the feature subsampling (only relevant when
    /// `params.max_features` is set).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] for an empty dataset.
    pub fn fit(data: &Dataset, params: &TreeParams, seed: u64) -> Result<Self, MlError> {
        Self::fit_indices(data, &(0..data.len()).collect::<Vec<_>>(), params, seed)
    }

    /// Fits a tree on a subset of `data` given by `indices` (used by
    /// bootstrap bagging).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] when `indices` is empty.
    pub fn fit_indices(
        data: &Dataset,
        indices: &[usize],
        params: &TreeParams,
        seed: u64,
    ) -> Result<Self, MlError> {
        if indices.is_empty() || data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = indices
            .iter()
            .map(|&i| data.features()[i].clone())
            .collect();
        let ys: Vec<f64> = indices.iter().map(|&i| data.targets()[i]).collect();
        let mut builder = Builder {
            xs: &xs,
            ys: &ys,
            params,
            nodes: Vec::new(),
            importance: vec![0.0; data.n_features()],
        };
        let all: Vec<usize> = (0..xs.len()).collect();
        let root = builder.build(&all, 0, &mut rng);
        debug_assert_eq!(root, 0);
        assert!(
            data.n_features() < LEAF as usize,
            "feature count must fit below the u16 leaf sentinel"
        );
        Ok(RegressionTree {
            flat: FlatTree::compile(&builder.nodes),
            nodes: builder.nodes,
            n_features: data.n_features(),
            importance: builder.importance,
        })
    }

    /// Predicts the target for one feature vector by walking the flat
    /// struct-of-arrays compilation — bit-identical to
    /// [`RegressionTree::predict_reference`], just cache-friendly.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_features, "feature width mismatch");
        self.flat.predict(x)
    }

    /// Predicts by walking the original `enum`-node tree — the
    /// pointer-chasing pre-compilation path, kept as the equivalence
    /// oracle (and benchmark baseline) for the flat layout.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn predict_reference(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_features, "feature width mismatch");
        let mut node = 0;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Accumulates this tree's prediction for every row of the row-major
    /// matrix `xs` (stride = the tree's feature count) into `out`
    /// (`out[r] += predict(row r)`), walking the flat arrays so one
    /// tree's layout stays hot in cache across the whole batch. Rows are
    /// processed in independent blocks so the walks overlap in the
    /// pipeline instead of serialising on load latency.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is not `out.len()` rows of `n_features`.
    pub fn accumulate_batch(&self, xs: &[f64], out: &mut [f64]) {
        let nf = self.n_features;
        assert_eq!(xs.len(), out.len() * nf, "matrix shape mismatch");
        if nf == 0 {
            // A zero-width tree is necessarily a single leaf.
            for o in out {
                *o += self.flat.predict(&[]);
            }
            return;
        }
        let mut rows = xs.chunks_exact(nf * 4);
        let mut outs = out.chunks_exact_mut(4);
        for (quad, o) in rows.by_ref().zip(outs.by_ref()) {
            // Four independent root-to-leaf walks in flight at once.
            let (a, rest) = quad.split_at(nf);
            let (b, rest) = rest.split_at(nf);
            let (c, d) = rest.split_at(nf);
            let mut ia = 0usize;
            let mut ib = 0usize;
            let mut ic = 0usize;
            let mut id = 0usize;
            let mut da = false;
            let mut db = false;
            let mut dc = false;
            let mut dd = false;
            loop {
                if !da {
                    da = self.flat.step(a, &mut ia);
                }
                if !db {
                    db = self.flat.step(b, &mut ib);
                }
                if !dc {
                    dc = self.flat.step(c, &mut ic);
                }
                if !dd {
                    dd = self.flat.step(d, &mut id);
                }
                if da && db && dc && dd {
                    break;
                }
            }
            o[0] += self.flat.threshold[ia];
            o[1] += self.flat.threshold[ib];
            o[2] += self.flat.threshold[ic];
            o[3] += self.flat.threshold[id];
        }
        for (row, o) in rows.remainder().chunks_exact(nf).zip(outs.into_remainder()) {
            *o += self.flat.predict(row);
        }
    }

    /// The flat struct-of-arrays compilation, `(feature, threshold,
    /// children)` — the canonical on-disk shape for model persistence.
    /// Slot `i` is a leaf when `feature[i] == u16::MAX` (the leaf value
    /// sits inline in `threshold[i]`); otherwise `children[i]` is the
    /// left-child index and the right child is `children[i] + 1`.
    pub fn flat_parts(&self) -> (&[u16], &[f64], &[u32]) {
        (
            &self.flat.feature,
            &self.flat.threshold,
            &self.flat.children,
        )
    }

    /// Reconstructs a fitted tree from [`RegressionTree::flat_parts`]
    /// output plus its feature width and importance vector. The flat
    /// layout is a complete encoding, so the reference `enum` tree is
    /// rebuilt from it and both prediction paths stay bit-identical to
    /// the originally fitted tree.
    ///
    /// Validation is total: every structural invariant is checked before
    /// any walk could run, so corrupted inputs are rejected instead of
    /// panicking or looping.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidParameter`] when the arrays are empty,
    /// have mismatched lengths, reference out-of-range features or
    /// children, or contain a non-forward child edge (which could form a
    /// cycle).
    pub fn from_flat_parts(
        feature: Vec<u16>,
        threshold: Vec<f64>,
        children: Vec<u32>,
        n_features: usize,
        importance: Vec<f64>,
    ) -> Result<Self, MlError> {
        let n = feature.len();
        if n == 0 {
            return Err(MlError::InvalidParameter(
                "tree must have at least one node",
            ));
        }
        if threshold.len() != n || children.len() != n {
            return Err(MlError::InvalidParameter("flat array lengths must match"));
        }
        if n_features >= LEAF as usize {
            return Err(MlError::InvalidParameter(
                "feature count must fit below the u16 leaf sentinel",
            ));
        }
        if importance.len() != n_features {
            return Err(MlError::InvalidParameter(
                "importance width must match feature count",
            ));
        }
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            if feature[i] == LEAF {
                nodes.push(Node::Leaf {
                    value: threshold[i],
                });
                continue;
            }
            if feature[i] as usize >= n_features {
                return Err(MlError::InvalidParameter("split feature out of range"));
            }
            let left = children[i] as usize;
            // Children must sit strictly after their parent (the compiler
            // allocates them that way), which both bounds the arrays and
            // rules out cycles, so every walk terminates.
            if left <= i || left + 1 >= n {
                return Err(MlError::InvalidParameter("child index not forward"));
            }
            nodes.push(Node::Split {
                feature: feature[i] as usize,
                threshold: threshold[i],
                left,
                right: left + 1,
            });
        }
        Ok(RegressionTree {
            flat: FlatTree {
                feature,
                threshold,
                children,
            },
            nodes,
            n_features,
            importance,
        })
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of feature columns the tree was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Unnormalised impurity importance per feature.
    pub fn importance(&self) -> &[f64] {
        &self.importance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> Dataset {
        let mut d = Dataset::new(vec!["x".into(), "noise".into()]);
        for i in 0..100 {
            let x = i as f64;
            let y = if x < 30.0 {
                5.0
            } else if x < 70.0 {
                20.0
            } else {
                -3.0
            };
            d.push(vec![x, (i % 7) as f64], y);
        }
        d
    }

    #[test]
    fn learns_piecewise_constant_function() {
        let d = step_data();
        let t = RegressionTree::fit(&d, &TreeParams::default(), 0).unwrap();
        assert!((t.predict(&[10.0, 0.0]) - 5.0).abs() < 0.5);
        assert!((t.predict(&[50.0, 0.0]) - 20.0).abs() < 0.5);
        assert!((t.predict(&[90.0, 0.0]) + 3.0).abs() < 0.5);
    }

    #[test]
    fn informative_feature_dominates_importance() {
        let d = step_data();
        let t = RegressionTree::fit(&d, &TreeParams::default(), 0).unwrap();
        assert!(t.importance()[0] > t.importance()[1] * 10.0);
    }

    #[test]
    fn depth_zero_yields_single_leaf_mean() {
        let d = step_data();
        let params = TreeParams {
            max_depth: 0,
            ..TreeParams::default()
        };
        let t = RegressionTree::fit(&d, &params, 0).unwrap();
        assert_eq!(t.node_count(), 1);
        let mean = d.targets().iter().sum::<f64>() / d.len() as f64;
        assert!((t.predict(&[0.0, 0.0]) - mean).abs() < 1e-9);
    }

    #[test]
    fn constant_target_is_single_leaf() {
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..20 {
            d.push(vec![i as f64], 7.5);
        }
        let t = RegressionTree::fit(&d, &TreeParams::default(), 0).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[3.0]), 7.5);
    }

    #[test]
    fn empty_dataset_errors() {
        let d = Dataset::new(vec!["x".into()]);
        assert!(matches!(
            RegressionTree::fit(&d, &TreeParams::default(), 0),
            Err(MlError::EmptyDataset)
        ));
    }

    #[test]
    fn min_samples_leaf_respected() {
        let d = step_data();
        let params = TreeParams {
            min_samples_leaf: 40,
            ..TreeParams::default()
        };
        let t = RegressionTree::fit(&d, &params, 0).unwrap();
        // With 100 samples and 40-sample leaves at most one split fits.
        assert!(t.node_count() <= 3, "nodes: {}", t.node_count());
    }

    #[test]
    #[should_panic]
    fn predict_rejects_wrong_width() {
        let d = step_data();
        let t = RegressionTree::fit(&d, &TreeParams::default(), 0).unwrap();
        let _ = t.predict(&[1.0]);
    }

    #[test]
    fn flat_walk_matches_reference_bitwise() {
        let d = step_data();
        let t = RegressionTree::fit(&d, &TreeParams::default(), 0).unwrap();
        for i in 0..120 {
            let x = [i as f64 - 10.0, (i % 9) as f64];
            assert_eq!(t.predict(&x).to_bits(), t.predict_reference(&x).to_bits());
        }
    }

    #[test]
    fn flat_parts_round_trip_is_bit_identical() {
        let d = step_data();
        let t = RegressionTree::fit(&d, &TreeParams::default(), 3).unwrap();
        let (f, th, ch) = t.flat_parts();
        let back = RegressionTree::from_flat_parts(
            f.to_vec(),
            th.to_vec(),
            ch.to_vec(),
            t.n_features(),
            t.importance().to_vec(),
        )
        .unwrap();
        assert_eq!(back.node_count(), t.node_count());
        for i in 0..120 {
            let x = [i as f64 - 10.0, (i % 9) as f64];
            assert_eq!(back.predict(&x).to_bits(), t.predict(&x).to_bits());
            assert_eq!(
                back.predict_reference(&x).to_bits(),
                t.predict_reference(&x).to_bits()
            );
        }
    }

    #[test]
    fn from_flat_parts_rejects_corrupt_structure() {
        let d = step_data();
        let t = RegressionTree::fit(&d, &TreeParams::default(), 3).unwrap();
        let (f, th, ch) = t.flat_parts();
        let (f, th, ch) = (f.to_vec(), th.to_vec(), ch.to_vec());
        // Empty tree.
        assert!(RegressionTree::from_flat_parts(vec![], vec![], vec![], 2, vec![0.0; 2]).is_err());
        // Mismatched lengths.
        assert!(RegressionTree::from_flat_parts(
            f.clone(),
            th[..th.len() - 1].to_vec(),
            ch.clone(),
            2,
            vec![0.0; 2]
        )
        .is_err());
        // Backward child edge (possible cycle) on the first split node.
        if let Some(split) = f.iter().position(|&v| v != u16::MAX) {
            let mut bad = ch.clone();
            bad[split] = split as u32;
            assert!(
                RegressionTree::from_flat_parts(f.clone(), th.clone(), bad, 2, vec![0.0; 2])
                    .is_err()
            );
        }
        // Split feature out of range.
        if let Some(split) = f.iter().position(|&v| v != u16::MAX) {
            let mut bad = f.clone();
            bad[split] = 7;
            assert!(
                RegressionTree::from_flat_parts(bad, th.clone(), ch.clone(), 2, vec![0.0; 2])
                    .is_err()
            );
        }
    }

    #[test]
    fn accumulate_batch_matches_scalar_walks() {
        let d = step_data();
        let t = RegressionTree::fit(&d, &TreeParams::default(), 0).unwrap();
        // 11 rows: exercises both the 4-wide blocks and the remainder.
        let rows: Vec<[f64; 2]> = (0..11).map(|i| [i as f64 * 9.5, (i % 5) as f64]).collect();
        let xs: Vec<f64> = rows.iter().flatten().copied().collect();
        let mut out = vec![0.0; rows.len()];
        t.accumulate_batch(&xs, &mut out);
        for (row, got) in rows.iter().zip(&out) {
            assert_eq!(got.to_bits(), t.predict(row).to_bits());
        }
    }
}
