//! CART regression trees (variance-reduction splits).
//!
//! These are the base learners of the paper's "decision-tree based Random
//! Forest" (§3.1, Equation 1).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::Dataset;
use crate::error::MlError;

/// Hyperparameters for one regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples a node needs before it may split.
    pub min_samples_split: usize,
    /// Minimum samples each child must keep.
    pub min_samples_leaf: usize,
    /// Features considered per split; `None` considers all (plain CART),
    /// `Some(m)` samples `m` at random (random-forest style).
    pub max_features: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 16,
            min_samples_split: 4,
            min_samples_leaf: 2,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART regression tree.
///
/// # Example
///
/// ```
/// use smartpick_ml::dataset::Dataset;
/// use smartpick_ml::tree::{RegressionTree, TreeParams};
///
/// let mut data = Dataset::new(vec!["x".into()]);
/// for i in 0..50 {
///     let x = i as f64;
///     data.push(vec![x], if x < 25.0 { 1.0 } else { 9.0 });
/// }
/// let tree = RegressionTree::fit(&data, &TreeParams::default(), 0)?;
/// assert!(tree.predict(&[10.0]) < 2.0);
/// assert!(tree.predict(&[40.0]) > 8.0);
/// # Ok::<(), smartpick_ml::MlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    n_features: usize,
    /// Total variance reduction contributed by each feature (unnormalised
    /// impurity importance).
    importance: Vec<f64>,
}

struct Builder<'a> {
    xs: &'a [Vec<f64>],
    ys: &'a [f64],
    params: &'a TreeParams,
    nodes: Vec<Node>,
    importance: Vec<f64>,
}

/// Candidate split found for a node.
struct BestSplit {
    feature: usize,
    threshold: f64,
    score: f64,
}

impl<'a> Builder<'a> {
    /// Sum of squared errors around the mean for the given sample indices.
    fn sse(&self, idx: &[usize]) -> f64 {
        if idx.is_empty() {
            return 0.0;
        }
        let mean = idx.iter().map(|&i| self.ys[i]).sum::<f64>() / idx.len() as f64;
        idx.iter().map(|&i| (self.ys[i] - mean).powi(2)).sum()
    }

    fn leaf(&mut self, idx: &[usize]) -> usize {
        let value = idx.iter().map(|&i| self.ys[i]).sum::<f64>() / idx.len() as f64;
        self.nodes.push(Node::Leaf { value });
        self.nodes.len() - 1
    }

    fn best_split_on(&self, idx: &[usize], feature: usize) -> Option<BestSplit> {
        let mut order: Vec<usize> = idx.to_vec();
        order.sort_by(|&a, &b| {
            self.xs[a][feature]
                .partial_cmp(&self.xs[b][feature])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let n = order.len();
        // Prefix sums of y and y² in feature order.
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let prefix: Vec<(f64, f64)> = order
            .iter()
            .map(|&i| {
                sum += self.ys[i];
                sum2 += self.ys[i] * self.ys[i];
                (sum, sum2)
            })
            .collect();
        let (total, total2) = prefix[n - 1];
        let mut best: Option<BestSplit> = None;
        let min_leaf = self.params.min_samples_leaf.max(1);
        for k in min_leaf..=(n - min_leaf) {
            if k == n {
                break;
            }
            let xa = self.xs[order[k - 1]][feature];
            let xb = self.xs[order[k]][feature];
            if xa == xb {
                continue; // cannot split between identical values
            }
            let (ls, ls2) = prefix[k - 1];
            let rs = total - ls;
            let rs2 = total2 - ls2;
            let sse_l = ls2 - ls * ls / k as f64;
            let sse_r = rs2 - rs * rs / (n - k) as f64;
            let score = sse_l + sse_r;
            if best.as_ref().is_none_or(|b| score < b.score) {
                best = Some(BestSplit {
                    feature,
                    threshold: (xa + xb) / 2.0,
                    score,
                });
            }
        }
        best
    }

    fn build(&mut self, idx: &[usize], depth: usize, rng: &mut impl Rng) -> usize {
        let node_sse = self.sse(idx);
        if depth >= self.params.max_depth
            || idx.len() < self.params.min_samples_split
            || node_sse <= 1e-12
        {
            return self.leaf(idx);
        }

        let n_features = self.xs[0].len();
        let features: Vec<usize> = match self.params.max_features {
            None => (0..n_features).collect(),
            Some(m) => {
                let mut all: Vec<usize> = (0..n_features).collect();
                all.shuffle(rng);
                all.truncate(m.clamp(1, n_features));
                all
            }
        };

        let best = features
            .iter()
            .filter_map(|&f| self.best_split_on(idx, f))
            .min_by(|a, b| {
                a.score
                    .partial_cmp(&b.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });

        let Some(best) = best else {
            return self.leaf(idx);
        };
        let gain = node_sse - best.score;
        if gain <= 1e-12 {
            return self.leaf(idx);
        }
        self.importance[best.feature] += gain;

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
            .iter()
            .partition(|&&i| self.xs[i][best.feature] <= best.threshold);
        // Reserve the split slot, then build children.
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { value: 0.0 });
        let left = self.build(&left_idx, depth + 1, rng);
        let right = self.build(&right_idx, depth + 1, rng);
        self.nodes[slot] = Node::Split {
            feature: best.feature,
            threshold: best.threshold,
            left,
            right,
        };
        slot
    }
}

impl RegressionTree {
    /// Fits a tree on `data`.
    ///
    /// `seed` drives the feature subsampling (only relevant when
    /// `params.max_features` is set).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] for an empty dataset.
    pub fn fit(data: &Dataset, params: &TreeParams, seed: u64) -> Result<Self, MlError> {
        Self::fit_indices(data, &(0..data.len()).collect::<Vec<_>>(), params, seed)
    }

    /// Fits a tree on a subset of `data` given by `indices` (used by
    /// bootstrap bagging).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] when `indices` is empty.
    pub fn fit_indices(
        data: &Dataset,
        indices: &[usize],
        params: &TreeParams,
        seed: u64,
    ) -> Result<Self, MlError> {
        if indices.is_empty() || data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = indices
            .iter()
            .map(|&i| data.features()[i].clone())
            .collect();
        let ys: Vec<f64> = indices.iter().map(|&i| data.targets()[i]).collect();
        let mut builder = Builder {
            xs: &xs,
            ys: &ys,
            params,
            nodes: Vec::new(),
            importance: vec![0.0; data.n_features()],
        };
        let all: Vec<usize> = (0..xs.len()).collect();
        let root = builder.build(&all, 0, &mut rng);
        debug_assert_eq!(root, 0);
        Ok(RegressionTree {
            nodes: builder.nodes,
            n_features: data.n_features(),
            importance: builder.importance,
        })
    }

    /// Predicts the target for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_features, "feature width mismatch");
        let mut node = 0;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of feature columns the tree was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Unnormalised impurity importance per feature.
    pub fn importance(&self) -> &[f64] {
        &self.importance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> Dataset {
        let mut d = Dataset::new(vec!["x".into(), "noise".into()]);
        for i in 0..100 {
            let x = i as f64;
            let y = if x < 30.0 {
                5.0
            } else if x < 70.0 {
                20.0
            } else {
                -3.0
            };
            d.push(vec![x, (i % 7) as f64], y);
        }
        d
    }

    #[test]
    fn learns_piecewise_constant_function() {
        let d = step_data();
        let t = RegressionTree::fit(&d, &TreeParams::default(), 0).unwrap();
        assert!((t.predict(&[10.0, 0.0]) - 5.0).abs() < 0.5);
        assert!((t.predict(&[50.0, 0.0]) - 20.0).abs() < 0.5);
        assert!((t.predict(&[90.0, 0.0]) + 3.0).abs() < 0.5);
    }

    #[test]
    fn informative_feature_dominates_importance() {
        let d = step_data();
        let t = RegressionTree::fit(&d, &TreeParams::default(), 0).unwrap();
        assert!(t.importance()[0] > t.importance()[1] * 10.0);
    }

    #[test]
    fn depth_zero_yields_single_leaf_mean() {
        let d = step_data();
        let params = TreeParams {
            max_depth: 0,
            ..TreeParams::default()
        };
        let t = RegressionTree::fit(&d, &params, 0).unwrap();
        assert_eq!(t.node_count(), 1);
        let mean = d.targets().iter().sum::<f64>() / d.len() as f64;
        assert!((t.predict(&[0.0, 0.0]) - mean).abs() < 1e-9);
    }

    #[test]
    fn constant_target_is_single_leaf() {
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..20 {
            d.push(vec![i as f64], 7.5);
        }
        let t = RegressionTree::fit(&d, &TreeParams::default(), 0).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[3.0]), 7.5);
    }

    #[test]
    fn empty_dataset_errors() {
        let d = Dataset::new(vec!["x".into()]);
        assert!(matches!(
            RegressionTree::fit(&d, &TreeParams::default(), 0),
            Err(MlError::EmptyDataset)
        ));
    }

    #[test]
    fn min_samples_leaf_respected() {
        let d = step_data();
        let params = TreeParams {
            min_samples_leaf: 40,
            ..TreeParams::default()
        };
        let t = RegressionTree::fit(&d, &params, 0).unwrap();
        // With 100 samples and 40-sample leaves at most one split fits.
        assert!(t.node_count() <= 3, "nodes: {}", t.node_count());
    }

    #[test]
    #[should_panic]
    fn predict_rejects_wrong_width() {
        let d = step_data();
        let t = RegressionTree::fit(&d, &TreeParams::default(), 0).unwrap();
        let _ = t.predict(&[1.0]);
    }
}
