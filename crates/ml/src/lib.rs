//! # smartpick-ml
//!
//! The machine-learning substrate for the Smartpick reproduction, built
//! from scratch because the paper's predictor stack (scikit-learn Random
//! Forest + a Python Bayesian optimizer) has no mature Rust equivalent.
//!
//! Provided here:
//!
//! * [`dataset::Dataset`] — feature matrix + targets, shuffled hold-out
//!   splits, and the paper's **data-burst** augmentation heuristic (§5:
//!   jitter every sample by ±5% to inflate a ~100-sample workload set ~10×).
//! * [`tree::RegressionTree`] — CART regression tree (variance-reduction
//!   splits).
//! * [`forest::RandomForest`] — bagged trees with feature subsampling and
//!   scikit-learn-style `warm_start` extension used for background
//!   retraining (§5 "Prediction model updates").
//! * [`gp::GaussianProcess`] — exact GP regression with an RBF kernel
//!   (Cholesky solve), the Bayesian optimizer's surrogate (§3.1).
//! * [`bayesopt::BayesianOptimizer`] — maximises a black-box objective over
//!   a discrete candidate set with Probability-of-Improvement acquisition
//!   (the paper's choice) plus EI and UCB for the ablation benches, and the
//!   paper's termination rule: stop after 10 consecutive probes with <1%
//!   improvement.
//! * [`metrics`] — RMSE, MAE, R², the regression standard error, and the
//!   paper's "within 2× standard error" accuracy criterion (§6.2).
//!
//! ## Example: fit a forest and search it with BO
//!
//! ```
//! use smartpick_ml::dataset::Dataset;
//! use smartpick_ml::forest::{ForestParams, RandomForest};
//! use smartpick_ml::bayesopt::{Acquisition, BayesianOptimizer, BoParams};
//!
//! // y = -(x0 - 3)^2: maximum at x0 = 3.
//! let mut data = Dataset::new(vec!["x".into()]);
//! for i in 0..40 {
//!     let x = i as f64 / 4.0;
//!     data.push(vec![x], -(x - 3.0) * (x - 3.0));
//! }
//! let forest = RandomForest::fit(&data, &ForestParams::default(), 7)?;
//!
//! let candidates: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 4.0]).collect();
//! let bo = BayesianOptimizer::new(BoParams {
//!     acquisition: Acquisition::ProbabilityOfImprovement { xi: 0.01 },
//!     ..BoParams::default()
//! });
//! let result = bo.maximize(&candidates, 42, |x| forest.predict(x));
//! assert!((result.best_x[0] - 3.0).abs() <= 1.0);
//! # Ok::<(), smartpick_ml::MlError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod bayesopt;
pub mod dataset;
pub mod error;
pub mod forest;
pub mod gp;
pub mod linalg;
pub mod metrics;
pub mod tree;

pub use bayesopt::{Acquisition, BayesianOptimizer, BoParams, BoResult};
pub use dataset::Dataset;
pub use error::MlError;
pub use forest::{ForestParams, RandomForest};
pub use gp::{GaussianProcess, GpParams};
pub use tree::{RegressionTree, TreeParams};
