//! Property-based tests for the ML substrate.

use proptest::prelude::*;

use smartpick_ml::dataset::Dataset;
use smartpick_ml::forest::{ForestParams, RandomForest};
use smartpick_ml::metrics;
use smartpick_ml::tree::{RegressionTree, TreeParams};

fn dataset(xs: &[(f64, f64)]) -> Dataset {
    let mut d = Dataset::new(vec!["x".into()]);
    for &(x, y) in xs {
        d.push(vec![x], y);
    }
    d
}

proptest! {
    /// Tree predictions never leave the convex hull of training targets.
    #[test]
    fn tree_predictions_bounded_by_targets(
        points in prop::collection::vec((-100.0f64..100.0, -50.0f64..50.0), 4..60),
        probe in -200.0f64..200.0,
    ) {
        let d = dataset(&points);
        let tree = RegressionTree::fit(&d, &TreeParams::default(), 1).unwrap();
        let lo = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        let y = tree.predict(&[probe]);
        prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9, "{y} outside [{lo}, {hi}]");
    }

    /// Forest predictions are also bounded by the target range (means of
    /// bounded tree outputs).
    #[test]
    fn forest_predictions_bounded(
        points in prop::collection::vec((-100.0f64..100.0, -50.0f64..50.0), 6..40),
        probe in -200.0f64..200.0,
    ) {
        let d = dataset(&points);
        let params = ForestParams { n_trees: 10, ..ForestParams::default() };
        let forest = RandomForest::fit(&d, &params, 2).unwrap();
        let lo = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        let y = forest.predict(&[probe]);
        prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
    }

    /// Splits partition the dataset exactly.
    #[test]
    fn split_partitions_exactly(n in 5usize..200, frac in 0.1f64..0.9, seed in 0u64..100) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..n {
            d.push(vec![i as f64], i as f64);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, test) = d.split(frac, &mut rng);
        prop_assert_eq!(train.len() + test.len(), n);
        prop_assert!(!train.is_empty());
        let mut all: Vec<f64> = train.targets().iter().chain(test.targets()).copied().collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f64> = (0..n).map(|i| i as f64).collect();
        prop_assert_eq!(all, expect);
    }

    /// The data-burst multiplies the sample count by exactly the factor and
    /// keeps every jittered target within the band.
    #[test]
    fn burst_respects_factor_and_band(
        n in 2usize..30,
        factor in 1usize..8,
        jitter in 0.0f64..0.2,
        seed in 0u64..100,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..n {
            d.push(vec![i as f64], 100.0 + i as f64);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let b = d.burst(factor, jitter, &mut rng);
        prop_assert_eq!(b.len(), n * factor.max(1));
        for &y in b.targets() {
            let ok = d.targets().iter().any(|&orig| (y - orig).abs() <= orig.abs() * jitter + 1e-9);
            prop_assert!(ok);
        }
    }

    /// RMSE is zero iff predictions equal truths; always non-negative.
    #[test]
    fn rmse_properties(ys in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        prop_assert!(metrics::rmse(&ys, &ys) < 1e-12);
        let shifted: Vec<f64> = ys.iter().map(|y| y + 1.0).collect();
        let r = metrics::rmse(&ys, &shifted);
        prop_assert!((r - 1.0).abs() < 1e-9);
    }

    /// accuracy_within is monotone in the threshold.
    #[test]
    fn accuracy_monotone_in_threshold(
        ys in prop::collection::vec(-100.0f64..100.0, 2..50),
        t1 in 0.0f64..50.0,
        dt in 0.0f64..50.0,
    ) {
        let pred: Vec<f64> = ys.iter().map(|y| y * 1.1 + 0.5).collect();
        let a1 = metrics::accuracy_within(&ys, &pred, t1);
        let a2 = metrics::accuracy_within(&ys, &pred, t1 + dt);
        prop_assert!(a2 >= a1);
    }

    /// norm_cdf is a monotone map into [0, 1].
    #[test]
    fn norm_cdf_monotone(a in -6.0f64..6.0, d in 0.0f64..6.0) {
        let ca = metrics::norm_cdf(a);
        let cb = metrics::norm_cdf(a + d);
        prop_assert!((0.0..=1.0).contains(&ca));
        prop_assert!(cb >= ca - 1e-9);
    }
}
