//! Property-based proof that the flat struct-of-arrays compilation and
//! the tree-outer batch path produce **bit-identical** predictions to the
//! original recursive `enum`-node walk — across random datasets, probe
//! grids, and forest sizes, including the degenerate shapes (single-leaf
//! trees, one-sample datasets; a zero-tree "empty forest" is
//! unconstructible by design and stays an error).

use proptest::prelude::*;

use smartpick_ml::dataset::Dataset;
use smartpick_ml::forest::{ForestParams, RandomForest};
use smartpick_ml::tree::{RegressionTree, TreeParams};
use smartpick_ml::MlError;

fn dataset(width: usize, points: &[(Vec<f64>, f64)]) -> Dataset {
    let mut d = Dataset::new((0..width).map(|i| format!("f{i}")).collect());
    for (x, y) in points {
        d.push(x.clone(), *y);
    }
    d
}

/// A row-major probe matrix spanning the training range and beyond.
fn probe_grid(width: usize, n_rows: usize, spread: f64) -> Vec<f64> {
    let mut xs = Vec::with_capacity(width * n_rows);
    for r in 0..n_rows {
        for c in 0..width {
            // Deterministic but irregular coverage, including negatives
            // and values outside the training hull.
            let v = ((r * 31 + c * 17) % 97) as f64 / 97.0;
            xs.push((v - 0.5) * 2.0 * spread);
        }
    }
    xs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single trees: the flat walk is bit-identical to the recursive
    /// reference walk everywhere, not just on training points.
    #[test]
    fn tree_flat_walk_is_bit_identical(
        width in 1usize..5,
        raw in prop::collection::vec((prop::collection::vec(-50.0f64..50.0, 4), -100.0f64..100.0), 1..40),
        max_depth in 0usize..8,
        seed in 0u64..1000,
    ) {
        let points: Vec<(Vec<f64>, f64)> =
            raw.iter().map(|(x, y)| (x[..width].to_vec(), *y)).collect();
        let d = dataset(width, &points);
        let params = TreeParams { max_depth, ..TreeParams::default() };
        let tree = RegressionTree::fit(&d, &params, seed).unwrap();
        let grid = probe_grid(width, 23, 80.0);
        for row in grid.chunks_exact(width) {
            prop_assert_eq!(
                tree.predict(row).to_bits(),
                tree.predict_reference(row).to_bits()
            );
        }
    }

    /// Forests: scalar, reference, and tree-outer batch paths agree
    /// bit-for-bit over a whole probe grid, across forest sizes and the
    /// single-leaf degenerate (max_depth = 0).
    #[test]
    fn forest_batch_path_is_bit_identical(
        width in 1usize..5,
        raw in prop::collection::vec((prop::collection::vec(-50.0f64..50.0, 4), -100.0f64..100.0), 1..30),
        n_trees in 1usize..12,
        max_depth in 0usize..10,
        rows in 0usize..40,
        seed in 0u64..1000,
    ) {
        let points: Vec<(Vec<f64>, f64)> =
            raw.iter().map(|(x, y)| (x[..width].to_vec(), *y)).collect();
        let d = dataset(width, &points);
        let params = ForestParams {
            n_trees,
            tree: TreeParams { max_depth, ..TreeParams::default() },
            ..ForestParams::default()
        };
        let forest = RandomForest::fit(&d, &params, seed).unwrap();
        let grid = probe_grid(width, rows, 120.0);

        // Batch (tree-outer, flat) vs scalar (flat) vs reference (enum).
        let batch = forest.predict_batch_flat(&grid);
        prop_assert_eq!(batch.len(), rows);
        for (row, got) in grid.chunks_exact(width).zip(&batch) {
            prop_assert_eq!(got.to_bits(), forest.predict(row).to_bits());
            prop_assert_eq!(got.to_bits(), forest.predict_reference(row).to_bits());
        }

        // The buffer-reusing variant agrees with the allocating one.
        let mut buf = vec![f64::NAN; rows];
        forest.predict_batch_into(&grid, &mut buf);
        prop_assert_eq!(&buf, &batch);

        // And the legacy Vec-of-rows batch stays consistent too.
        let rows_vec: Vec<Vec<f64>> =
            grid.chunks_exact(width).map(|r| r.to_vec()).collect();
        let legacy = forest.predict_batch(&rows_vec);
        prop_assert_eq!(legacy, batch);
    }

    /// Warm-start retraining (the ensemble-mutating path) preserves the
    /// equivalence: extended and pruned forests still agree across paths.
    #[test]
    fn equivalence_survives_warm_start_and_eviction(
        raw in prop::collection::vec((-50.0f64..50.0, -100.0f64..100.0), 2..25),
        extend in 1usize..8,
        seed in 0u64..1000,
    ) {
        let points: Vec<(Vec<f64>, f64)> =
            raw.iter().map(|&(x, y)| (vec![x], y)).collect();
        let d = dataset(1, &points);
        let params = ForestParams { n_trees: 4, ..ForestParams::default() };
        let mut forest = RandomForest::fit(&d, &params, seed).unwrap();
        forest.warm_start_extend(&d, extend, seed ^ 0xA5).unwrap();
        forest.retire_oldest(2, 1);
        let grid = probe_grid(1, 17, 90.0);
        let batch = forest.predict_batch_flat(&grid);
        for (row, got) in grid.chunks_exact(1).zip(&batch) {
            prop_assert_eq!(got.to_bits(), forest.predict_reference(row).to_bits());
        }
    }
}

/// The "empty forest" case: a zero-tree ensemble cannot be built, so the
/// batch path never has to divide by zero — the constructor rejects it.
#[test]
fn empty_forest_is_unconstructible() {
    let mut d = Dataset::new(vec!["x".into()]);
    d.push(vec![1.0], 2.0);
    let params = ForestParams {
        n_trees: 0,
        ..ForestParams::default()
    };
    assert!(matches!(
        RandomForest::fit(&d, &params, 0),
        Err(MlError::InvalidParameter(_))
    ));
}

/// An empty probe matrix is a no-op for every batch entry point.
#[test]
fn empty_batch_is_a_noop() {
    let mut d = Dataset::new(vec!["x".into()]);
    for i in 0..6 {
        d.push(vec![i as f64], i as f64);
    }
    let forest = RandomForest::fit(&d, &ForestParams::default(), 3).unwrap();
    assert!(forest.predict_batch_flat(&[]).is_empty());
    let mut out: Vec<f64> = Vec::new();
    forest.predict_batch_into(&[], &mut out);
    assert!(out.is_empty());
}

/// A one-sample dataset compiles to a single-leaf tree whose flat walk
/// returns the constant bit-identically.
#[test]
fn single_leaf_tree_is_flat_identical() {
    let mut d = Dataset::new(vec!["x".into()]);
    d.push(vec![0.25], 7.125);
    let tree = RegressionTree::fit(&d, &TreeParams::default(), 0).unwrap();
    assert_eq!(tree.node_count(), 1);
    for probe in [-1e9, 0.0, 0.25, 1e9] {
        assert_eq!(
            tree.predict(&[probe]).to_bits(),
            tree.predict_reference(&[probe]).to_bits()
        );
        assert_eq!(tree.predict(&[probe]), 7.125);
    }
}
