//! Property-based tests: the lexer and extractor must be total (never
//! panic) over arbitrary input, and similarity must respect its bounds.

use proptest::prelude::*;

use smartpick_sqlmeta::{cosine_similarity, extract, rank_by_similarity, tokenize};

proptest! {
    /// The tokenizer is total over arbitrary unicode strings.
    #[test]
    fn tokenizer_never_panics(s in "\\PC{0,400}") {
        let _ = tokenize(&s);
    }

    /// Extraction is total and produces consistent counts.
    #[test]
    fn extraction_never_panics(s in "\\PC{0,400}") {
        let meta = extract(&s);
        prop_assert_eq!(meta.table_count(), meta.tables.len());
        prop_assert_eq!(meta.column_count(), meta.columns.len());
    }

    /// Extraction is total over SQL-ish strings too. Generated names are
    /// prefixed so they cannot collide with SQL keywords (a bare `in`
    /// would rightly be treated as a keyword, not a table).
    #[test]
    fn extraction_on_sqlish(
        tables in prop::collection::vec("tbl_[a-z]{1,8}", 1..5),
        cols in prop::collection::vec("col_[a-z]{1,8}", 1..6),
    ) {
        let sql = format!(
            "SELECT {} FROM {}",
            cols.join(", "),
            tables.join(", ")
        );
        let meta = extract(&sql);
        prop_assert!(meta.table_count() <= tables.len());
        prop_assert!(meta.table_count() >= 1);
    }

    /// Cosine similarity stays within [-1, 1] and is symmetric.
    #[test]
    fn cosine_bounds_and_symmetry(
        a in prop::collection::vec(-100.0f64..100.0, 4),
        b in prop::collection::vec(-100.0f64..100.0, 4),
    ) {
        let s = cosine_similarity(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
        let t = cosine_similarity(&b, &a);
        prop_assert!((s - t).abs() < 1e-12);
    }

    /// Self-similarity of a non-zero vector is 1.
    #[test]
    fn self_similarity_is_one(a in prop::collection::vec(0.1f64..100.0, 4)) {
        prop_assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-9);
    }

    /// Rankings are sorted descending and cover all candidates.
    #[test]
    fn rankings_sorted(
        probe in prop::collection::vec(-10.0f64..10.0, 3),
        known in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 3), 1..10),
    ) {
        let ranked = rank_by_similarity(&probe, &known);
        prop_assert_eq!(ranked.len(), known.len());
        for w in ranked.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
    }
}
