//! Query-metadata extraction: tables, columns, subqueries.

use std::collections::BTreeSet;

use crate::lexer::{tokenize, Token};

/// SQL keywords and aggregate functions that are never table or column
/// names.
const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "ORDER",
    "BY",
    "HAVING",
    "JOIN",
    "INNER",
    "OUTER",
    "LEFT",
    "RIGHT",
    "FULL",
    "CROSS",
    "ON",
    "AS",
    "AND",
    "OR",
    "NOT",
    "IN",
    "EXISTS",
    "BETWEEN",
    "LIKE",
    "IS",
    "NULL",
    "DISTINCT",
    "UNION",
    "ALL",
    "ANY",
    "CASE",
    "WHEN",
    "THEN",
    "ELSE",
    "END",
    "LIMIT",
    "OFFSET",
    "ASC",
    "DESC",
    "WITH",
    "OVER",
    "PARTITION",
    "ROWS",
    "PRECEDING",
    "FOLLOWING",
    "CURRENT",
    "ROW",
    "SUM",
    "AVG",
    "COUNT",
    "MIN",
    "MAX",
    "STDDEV",
    "ABS",
    "ROUND",
    "CAST",
    "COALESCE",
    "SUBSTR",
    "SUBSTRING",
    "EXTRACT",
    "YEAR",
    "MONTH",
    "DAY",
    "DATE",
    "INTERVAL",
    "RANK",
    "DENSE_RANK",
    "ROW_NUMBER",
    "TOP",
    "INTO",
    "VALUES",
    "INSERT",
    "UPDATE",
    "DELETE",
    "CREATE",
    "TABLE",
    "VIEW",
];

fn is_keyword(upper: &str) -> bool {
    KEYWORDS.contains(&upper)
}

/// Metadata extracted from one SQL query — the Similarity Checker's raw
/// material (§4.2).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryMetadata {
    /// Distinct table names referenced in `FROM` / `JOIN` clauses.
    pub tables: BTreeSet<String>,
    /// Distinct column names referenced anywhere (qualified names are
    /// reduced to their final segment).
    pub columns: BTreeSet<String>,
    /// Number of nested `SELECT`s (top-level query not counted).
    pub subquery_count: usize,
}

impl QueryMetadata {
    /// Number of distinct tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Number of distinct columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// The Similarity Checker's feature vector
    /// `(tables, columns, subqueries, map_tasks)` (§5).
    pub fn to_similarity_vector(&self, map_tasks: usize) -> [f64; 4] {
        [
            self.table_count() as f64,
            self.column_count() as f64,
            self.subquery_count as f64,
            map_tasks as f64,
        ]
    }
}

/// Extracts [`QueryMetadata`] from SQL text.
///
/// The extraction is heuristic (as is the `sql-metadata` library the paper
/// uses): identifiers after `FROM`/`JOIN` become tables (comma lists
/// included); all other non-keyword identifiers become columns, with
/// qualified names (`alias.column`) contributing their last segment; each
/// `SELECT` beyond the first counts as a subquery. Table aliases directly
/// following a table name are ignored.
pub fn extract(sql: &str) -> QueryMetadata {
    let tokens = tokenize(sql);
    let mut meta = QueryMetadata::default();
    let mut select_count = 0usize;

    // Pass 1: tables and aliases.
    let mut aliases: BTreeSet<String> = BTreeSet::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Some(word) = tokens[i].as_upper_word() {
            if word == "SELECT" {
                select_count += 1;
            }
            if word == "FROM" || word == "JOIN" {
                i += 1;
                // A parenthesis here means a derived table (subquery), which
                // pass 1 skips; the inner SELECT is counted anyway.
                // Expect: table [alias] [, table [alias]]...
                while let Some(Token::Word(name)) = tokens.get(i) {
                    let upper = name.to_ascii_uppercase();
                    if is_keyword(&upper) {
                        break;
                    }
                    meta.tables.insert(name.clone());
                    i += 1;
                    // Optional alias: a non-keyword word right after.
                    if let Some(Token::Word(alias)) = tokens.get(i) {
                        let au = alias.to_ascii_uppercase();
                        if !is_keyword(&au) && !alias.contains('.') {
                            aliases.insert(alias.clone());
                            i += 1;
                        } else if au == "AS" {
                            i += 1;
                            if let Some(Token::Word(alias)) = tokens.get(i) {
                                aliases.insert(alias.clone());
                                i += 1;
                            }
                        }
                    }
                    if tokens.get(i) == Some(&Token::Punct(',')) {
                        i += 1;
                    } else {
                        break;
                    }
                }
                continue;
            }
        }
        i += 1;
    }

    // Pass 2: columns — every other non-keyword identifier.
    for token in &tokens {
        let Token::Word(w) = token else { continue };
        let upper = w.to_ascii_uppercase();
        if is_keyword(&upper) {
            continue;
        }
        if let Some((qualifier, column)) = w.rsplit_once('.') {
            // Qualified name: the qualifier is a table or alias; the final
            // segment is the column.
            let _ = qualifier;
            if !column.is_empty() {
                meta.columns.insert(column.to_string());
            }
        } else if !meta.tables.contains(w) && !aliases.contains(w) {
            meta.columns.insert(w.clone());
        }
    }

    meta.subquery_count = select_count.saturating_sub(1);
    meta
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let m = extract("SELECT a, b FROM t WHERE c > 1");
        assert_eq!(m.table_count(), 1);
        assert!(m.tables.contains("t"));
        assert_eq!(m.column_count(), 3);
        assert_eq!(m.subquery_count, 0);
    }

    #[test]
    fn joins_and_aliases() {
        let m = extract(
            "SELECT ss.item_sk, i.category FROM store_sales ss \
             JOIN item i ON ss.item_sk = i.item_sk",
        );
        assert_eq!(m.table_count(), 2);
        assert!(m.tables.contains("store_sales") && m.tables.contains("item"));
        assert!(m.columns.contains("item_sk") && m.columns.contains("category"));
        // Aliases are not columns.
        assert!(!m.columns.contains("ss") && !m.columns.contains("i"));
    }

    #[test]
    fn comma_join_lists() {
        let m = extract("SELECT x FROM a, b, c WHERE a.k = b.k AND b.j = c.j");
        assert_eq!(m.table_count(), 3);
    }

    #[test]
    fn subqueries_counted() {
        let m = extract(
            "SELECT * FROM t WHERE x IN (SELECT y FROM u) \
             AND z > (SELECT AVG(w) FROM v)",
        );
        assert_eq!(m.subquery_count, 2);
        assert!(m.tables.contains("u") && m.tables.contains("v"));
    }

    #[test]
    fn aggregates_are_not_columns() {
        let m = extract("SELECT SUM(net_paid), COUNT(x) FROM s GROUP BY y");
        assert!(!m.columns.contains("SUM") && !m.columns.contains("COUNT"));
        assert!(m.columns.contains("net_paid"));
    }

    #[test]
    fn similarity_vector_shape() {
        let m = extract("SELECT a FROM t");
        let v = m.to_similarity_vector(120);
        assert_eq!(v, [1.0, 1.0, 0.0, 120.0]);
    }

    #[test]
    fn empty_query_is_empty() {
        let m = extract("");
        assert_eq!(m.table_count(), 0);
        assert_eq!(m.column_count(), 0);
        assert_eq!(m.subquery_count, 0);
    }

    #[test]
    fn with_clause_tables() {
        let m = extract(
            "WITH recent AS (SELECT * FROM sales WHERE d > 10) \
             SELECT r.total FROM recent r",
        );
        assert!(m.tables.contains("sales"));
        assert!(m.tables.contains("recent"));
        assert_eq!(m.subquery_count, 1);
    }
}
