//! Spatial cosine similarity (§4.2).

/// Cosine similarity between two equal-length vectors, in `[-1, 1]`.
///
/// A zero vector yields similarity 0 against anything — a harmless
/// convention for the Similarity Checker (an empty query matches nothing
/// well).
///
/// # Panics
///
/// Panics if the vectors differ in length.
///
/// # Example
///
/// ```
/// use smartpick_sqlmeta::cosine_similarity;
/// assert!((cosine_similarity(&[1.0, 2.0], &[2.0, 4.0]) - 1.0).abs() < 1e-12);
/// assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
/// ```
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na <= 1e-12 || nb <= 1e-12 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Ranks `known` vectors by cosine similarity to `probe`, best first.
///
/// Returns `(index, similarity)` pairs. Ties preserve input order, keeping
/// results deterministic.
pub fn rank_by_similarity(probe: &[f64], known: &[Vec<f64>]) -> Vec<(usize, f64)> {
    let mut ranked: Vec<(usize, f64)> = known
        .iter()
        .enumerate()
        .map(|(i, k)| (i, cosine_similarity(probe, k)))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_direction_is_one() {
        assert!((cosine_similarity(&[3.0, 4.0], &[6.0, 8.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn opposite_direction_is_minus_one() {
        assert!((cosine_similarity(&[1.0, 0.0], &[-2.0, 0.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_yields_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn ranking_orders_best_first() {
        let probe = [1.0, 1.0, 0.0, 100.0];
        let known = vec![
            vec![1.0, 1.0, 0.0, 500.0], // same shape, different magnitude axis
            vec![1.0, 1.0, 0.0, 101.0], // nearly identical
            vec![0.0, 0.0, 5.0, 0.0],   // orthogonal-ish
        ];
        let ranked = rank_by_similarity(&probe, &known);
        assert_eq!(ranked[0].0, 1);
        assert_eq!(ranked[2].0, 2);
        assert!(ranked[0].1 > ranked[1].1 && ranked[1].1 > ranked[2].1);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let _ = cosine_similarity(&[1.0], &[1.0, 2.0]);
    }
}
