//! # smartpick-sqlmeta
//!
//! SQL metadata extraction and vector similarity — the Rust stand-in for
//! the Python `sql-metadata` library Smartpick's **Similarity Checker**
//! uses (§5 "Query similarity check").
//!
//! When an *alien* (unknown) query arrives, Smartpick extracts "meaningful
//! information such as the number of tables, columns and subqueries
//! inferred in the request", builds a 4-dimensional vector (together with
//! the number of map tasks) and ranks known queries by **spatial cosine
//! similarity** to find the closest identifier (§4.2).
//!
//! ## Example
//!
//! ```
//! use smartpick_sqlmeta::{extract, cosine_similarity};
//!
//! let meta = extract(
//!     "SELECT ss.item_sk, SUM(ss.net_paid) \
//!      FROM store_sales ss JOIN item i ON ss.item_sk = i.item_sk \
//!      WHERE i.category = 'Music' GROUP BY ss.item_sk",
//! );
//! assert_eq!(meta.table_count(), 2);
//! assert_eq!(meta.subquery_count, 0);
//! assert!(meta.column_count() >= 3);
//!
//! let sim = cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]);
//! assert!((sim - 1.0).abs() < 1e-12);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod lexer;
pub mod metadata;
pub mod similarity;

pub use lexer::{tokenize, Token};
pub use metadata::{extract, QueryMetadata};
pub use similarity::{cosine_similarity, rank_by_similarity};
