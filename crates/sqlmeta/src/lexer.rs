//! A small SQL lexer: just enough structure for metadata extraction.

/// One lexical token of a SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A bare or dotted identifier or keyword (`store_sales`, `ss.item_sk`).
    /// Keywords are *not* distinguished here; [`crate::metadata`] decides.
    Word(String),
    /// A quoted string literal (contents without quotes).
    StringLit(String),
    /// A numeric literal.
    Number(String),
    /// A single punctuation character: `( ) , ; = < > + - * / .` etc.
    Punct(char),
}

impl Token {
    /// The word, uppercased, if this token is a word.
    pub fn as_upper_word(&self) -> Option<String> {
        match self {
            Token::Word(w) => Some(w.to_ascii_uppercase()),
            _ => None,
        }
    }
}

/// Tokenizes a SQL string.
///
/// Handles single-quoted strings (with `''` escapes), double-quoted
/// identifiers, line comments (`--`), block comments (`/* */`), numbers and
/// dotted identifiers. Anything unrecognised is skipped.
///
/// # Example
///
/// ```
/// use smartpick_sqlmeta::{tokenize, Token};
/// let tokens = tokenize("SELECT a FROM t -- comment\nWHERE a = 'x''y'");
/// assert!(tokens.contains(&Token::Word("t".into())));
/// assert!(tokens.contains(&Token::StringLit("x'y".into())));
/// ```
pub fn tokenize(sql: &str) -> Vec<Token> {
    let chars: Vec<char> = sql.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '-' && chars.get(i + 1) == Some(&'-') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            i += 2;
            while i + 1 < chars.len() && !(chars[i] == '*' && chars[i + 1] == '/') {
                i += 1;
            }
            i = (i + 2).min(chars.len());
        } else if c == '\'' {
            let mut s = String::new();
            i += 1;
            while i < chars.len() {
                if chars[i] == '\'' {
                    if chars.get(i + 1) == Some(&'\'') {
                        s.push('\'');
                        i += 2;
                    } else {
                        i += 1;
                        break;
                    }
                } else {
                    s.push(chars[i]);
                    i += 1;
                }
            }
            tokens.push(Token::StringLit(s));
        } else if c == '"' {
            let mut s = String::new();
            i += 1;
            while i < chars.len() && chars[i] != '"' {
                s.push(chars[i]);
                i += 1;
            }
            i = (i + 1).min(chars.len());
            tokens.push(Token::Word(s));
        } else if c.is_ascii_digit() {
            let mut s = String::new();
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                s.push(chars[i]);
                i += 1;
            }
            tokens.push(Token::Number(s));
        } else if c.is_alphabetic() || c == '_' {
            let mut s = String::new();
            while i < chars.len()
                && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
            {
                s.push(chars[i]);
                i += 1;
            }
            tokens.push(Token::Word(s));
        } else {
            tokens.push(Token::Punct(c));
            i += 1;
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_numbers_and_puncts() {
        let t = tokenize("SELECT a1, 42 FROM t;");
        assert_eq!(
            t,
            vec![
                Token::Word("SELECT".into()),
                Token::Word("a1".into()),
                Token::Punct(','),
                Token::Number("42".into()),
                Token::Word("FROM".into()),
                Token::Word("t".into()),
                Token::Punct(';'),
            ]
        );
    }

    #[test]
    fn dotted_identifiers_stay_joined() {
        let t = tokenize("ss.item_sk");
        assert_eq!(t, vec![Token::Word("ss.item_sk".into())]);
    }

    #[test]
    fn comments_are_skipped() {
        let t = tokenize("a -- hidden\n/* also hidden */ b");
        assert_eq!(t, vec![Token::Word("a".into()), Token::Word("b".into())]);
    }

    #[test]
    fn string_escapes() {
        let t = tokenize("'it''s'");
        assert_eq!(t, vec![Token::StringLit("it's".into())]);
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        let _ = tokenize("'unterminated");
        let _ = tokenize("\"unterminated");
        let _ = tokenize("/* unterminated");
        let _ = tokenize("-- only a comment");
    }

    #[test]
    fn upper_word_helper() {
        assert_eq!(
            Token::Word("select".into()).as_upper_word(),
            Some("SELECT".into())
        );
        assert_eq!(Token::Number("1".into()).as_upper_word(), None);
    }
}
