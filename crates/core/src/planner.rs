//! The closed-form time/cost planning model.
//!
//! This is the analytical model behind the paper's §2.2 illustrative
//! example (Figure 1) and the cost side of the knob's Equation 4: given a
//! configuration `{nVM, nSL}`, an amount of work, the 55 s literature VM
//! boot, the ~30% serverless execution overhead and the §5 billing rules,
//! it produces the *expected* completion time and cost without running
//! anything.
//!
//! Smartpick's predictor uses the measured Random Forest for time; the
//! planner supplies the matching **cost estimate** for any estimated time
//! (Equation 4's `nVM·t_vm·C_vm + nSL·t_sl·C_sl` plus storage terms).

use smartpick_cloudsim::boot::PLANNING_VM_BOOT_SECS;
use smartpick_cloudsim::{CloudEnv, Money};
use smartpick_engine::{Allocation, RelayPolicy};

/// A simple uniform workload for analytical planning: `tasks` identical
/// tasks of `task_secs_on_vm` seconds each (on a VM).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformWorkload {
    /// Total number of tasks.
    pub tasks: usize,
    /// Per-task seconds on a VM worker.
    pub task_secs_on_vm: f64,
}

/// The §2.2 example's serverless execution overhead (+30%).
pub const SL_OVERHEAD: f64 = 1.3;

/// Expected completion time and cost for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEstimate {
    /// Expected completion time, seconds.
    pub seconds: f64,
    /// Expected cost.
    pub cost: Money,
}

/// The analytical planner for one cloud environment.
#[derive(Debug, Clone)]
pub struct Planner {
    env: CloudEnv,
    /// VM cold-boot seconds assumed when planning (default: the 55 s
    /// literature value, §2.2).
    pub boot_secs: f64,
}

impl Planner {
    /// Creates a planner with the paper's 55 s planning boot time.
    pub fn new(env: CloudEnv) -> Self {
        Planner {
            env,
            boot_secs: PLANNING_VM_BOOT_SECS,
        }
    }

    /// Overrides the planning boot time (ablations).
    pub fn with_boot_secs(mut self, secs: f64) -> Self {
        self.boot_secs = secs;
        self
    }

    /// Expected completion time (seconds) of `workload` under `alloc`,
    /// using fluid-flow list scheduling: serverless slots work from t = 0,
    /// VM slots join after the boot window; under relay the serverless
    /// slots stop at the boot window.
    ///
    /// Returns `f64::INFINITY` for an empty allocation.
    pub fn expected_seconds(&self, workload: &UniformWorkload, alloc: &Allocation) -> f64 {
        let slots_per = self.env.catalog().worker_vm().slots() as f64;
        let sl_slots = alloc.n_sl as f64 * slots_per;
        let vm_slots = alloc.n_vm as f64 * slots_per;
        if sl_slots + vm_slots <= 0.0 {
            return f64::INFINITY;
        }
        let t_vm = workload.task_secs_on_vm;
        let t_sl = t_vm * SL_OVERHEAD;
        let n = workload.tasks as f64;

        if vm_slots == 0.0 {
            // SL-only.
            return n * t_sl / sl_slots;
        }
        let boot = self.boot_secs;
        // Tasks the SLs finish during the boot window.
        let done_in_boot = (sl_slots * boot / t_sl).min(n);
        if done_in_boot >= n && sl_slots > 0.0 {
            // Query fits entirely in the boot window on SLs.
            return n * t_sl / sl_slots;
        }
        let remaining = n - done_in_boot;
        match alloc.relay {
            RelayPolicy::Relay => boot + remaining * t_vm / vm_slots,
            _ => {
                if sl_slots == 0.0 {
                    boot + remaining * t_vm / vm_slots
                } else {
                    let rate = vm_slots / t_vm + sl_slots / t_sl;
                    boot + remaining / rate
                }
            }
        }
    }

    /// Expected cost of running for `est_seconds` under `alloc`
    /// (Equation 4's constraint, §3.3): each VM bills `C_vm` for its
    /// deployed share of the query, each SL bills `C_sl` for its lifetime
    /// (boot window under relay, segue timeout under segueing, the whole
    /// query otherwise), and the external-store host bills for the query
    /// when serverless participates.
    pub fn expected_cost(&self, alloc: &Allocation, est_seconds: f64) -> Money {
        let pricing = self.env.pricing();
        let catalog = self.env.catalog();
        let mut cost = Money::ZERO;

        // Eq. 4's t_vm: VMs are deployed from boot-completion to query end.
        let t_vm = (est_seconds - self.boot_secs).max(0.0);
        if alloc.n_vm > 0 {
            let c_vm = pricing.vm_cost_per_second(catalog.worker_vm());
            cost += c_vm * (alloc.n_vm as f64 * t_vm);
        }

        // Eq. 4's t_sl by relay policy.
        if alloc.n_sl > 0 {
            let c_sl = pricing.sl_cost_per_second(catalog.worker_sl());
            let sl_seconds = match alloc.relay {
                RelayPolicy::Relay if alloc.n_vm > 0 => {
                    // Only SLs *paired* with a VM retire at the boot
                    // window; any surplus SLs live to query end (§4.3).
                    let paired = alloc.n_sl.min(alloc.n_vm) as f64;
                    let unpaired = alloc.n_sl as f64 - paired;
                    paired * self.boot_secs.min(est_seconds) + unpaired * est_seconds
                }
                // Segueing leases every SL for the full static window.
                RelayPolicy::Segue { timeout } => alloc.n_sl as f64 * timeout.as_secs_f64(),
                _ => alloc.n_sl as f64 * est_seconds,
            };
            cost += c_sl * sl_seconds;
            // External store host while serverless participates (§5).
            let c_store = catalog.master_vm().hourly_price * (1.0 / 3600.0);
            cost += c_store * est_seconds;
        }
        cost
    }

    /// Expected time *and* cost in one call.
    pub fn estimate(&self, workload: &UniformWorkload, alloc: &Allocation) -> PlanEstimate {
        let seconds = self.expected_seconds(workload, alloc);
        PlanEstimate {
            seconds,
            cost: self.expected_cost(alloc, seconds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartpick_cloudsim::Provider;
    use smartpick_engine::Allocation;

    fn planner() -> Planner {
        Planner::new(CloudEnv::new(Provider::Aws))
    }

    /// The paper's §2.2 relay example: 500 tasks, 5 SLs relaying into 5
    /// VMs, ~3.7 s tasks → "198.8 seconds with a reduced cost of 5¢".
    #[test]
    fn paper_relay_example_reproduces() {
        let p = planner();
        let w = UniformWorkload {
            tasks: 500,
            task_secs_on_vm: 3.72,
        };
        let alloc = Allocation::new(5, 5).with_relay(RelayPolicy::Relay);
        let est = p.estimate(&w, &alloc);
        assert!(
            (190.0..210.0).contains(&est.seconds),
            "expected ~198.8s, got {}",
            est.seconds
        );
        assert!(
            (3.5..6.5).contains(&est.cost.cents()),
            "expected ~5 cents, got {}",
            est.cost.cents()
        );
    }

    /// §2.2: short queries favour SL-only; long queries favour VM-heavy.
    #[test]
    fn crossover_between_sl_only_and_vm_only() {
        let p = planner();
        let short = UniformWorkload {
            tasks: 100,
            task_secs_on_vm: 3.72,
        };
        let long = UniformWorkload {
            tasks: 500,
            task_secs_on_vm: 3.72,
        };
        let sl = Allocation::sl_only(5);
        let vm = Allocation::vm_only(5);
        assert!(p.expected_seconds(&short, &sl) < p.expected_seconds(&short, &vm));
        assert!(p.expected_seconds(&long, &vm) <= p.expected_seconds(&long, &sl));
    }

    /// §2.2: the mid class sits near the crossover — hybrids land within a
    /// few percent of the best extreme (the "richer tradeoff space"), and
    /// their *cost* beats SL-only.
    #[test]
    fn hybrid_is_competitive_and_cheaper_for_mid_queries() {
        let p = planner();
        let mid = UniformWorkload {
            tasks: 250,
            task_secs_on_vm: 3.72,
        };
        let sl_only = p.estimate(&mid, &Allocation::sl_only(5));
        let best_extreme = sl_only
            .seconds
            .min(p.expected_seconds(&mid, &Allocation::vm_only(5)));
        let hybrid_secs = (1..5)
            .map(|v| p.expected_seconds(&mid, &Allocation::new(v, 5 - v)))
            .fold(f64::INFINITY, f64::min);
        assert!(
            hybrid_secs < best_extreme * 1.15,
            "hybrid {hybrid_secs} vs extremes {best_extreme}"
        );
        // Relay hybrids beat SL-only on cost (the §2.2 point).
        let hybrid_cost = (1..5)
            .map(|v| {
                p.estimate(
                    &mid,
                    &Allocation::new(v, 5 - v).with_relay(RelayPolicy::Relay),
                )
                .cost
            })
            .min_by(|a, b| a.partial_cmp(b).unwrap())
            .unwrap();
        assert!(
            hybrid_cost < sl_only.cost,
            "hybrid {hybrid_cost} vs SL-only {}",
            sl_only.cost
        );
    }

    #[test]
    fn relay_costs_less_than_plain_hybrid() {
        let p = planner();
        let est = 200.0;
        let plain = p.expected_cost(&Allocation::new(5, 5), est);
        let relay = p.expected_cost(&Allocation::new(5, 5).with_relay(RelayPolicy::Relay), est);
        assert!(relay < plain, "relay {relay} vs plain {plain}");
    }

    #[test]
    fn empty_allocation_is_infinite() {
        let p = planner();
        let w = UniformWorkload {
            tasks: 10,
            task_secs_on_vm: 1.0,
        };
        assert!(p.expected_seconds(&w, &Allocation::new(0, 0)).is_infinite());
    }

    #[test]
    fn query_fitting_in_boot_window_is_sl_bound() {
        let p = planner();
        let tiny = UniformWorkload {
            tasks: 10,
            task_secs_on_vm: 1.0,
        };
        let t = p.expected_seconds(&tiny, &Allocation::new(5, 5).with_relay(RelayPolicy::Relay));
        assert!(
            t < PLANNING_VM_BOOT_SECS,
            "tiny query should not wait for boot: {t}"
        );
    }

    #[test]
    fn gcp_vm_cost_is_cheaper_than_aws() {
        // GCP has no burstable surcharge (§6.1).
        let aws = planner();
        let gcp = Planner::new(CloudEnv::new(Provider::Gcp));
        let alloc = Allocation::vm_only(5);
        assert!(gcp.expected_cost(&alloc, 200.0) < aws.expected_cost(&alloc, 200.0));
    }
}
