//! The workload-prediction feature schema (the paper's Table 3).
//!
//! | Feature | Comment |
//! |---|---|
//! | `instances` | number of VMs and SLs used (two columns here) |
//! | `input-size` | size of input in bytes |
//! | `start-time-epoch` | initial job submit time in epoch |
//! | `total-memory` | total memory of available workers |
//! | `available-memory` | available memory of available workers |
//! | `memory-per-executor` | memory assigned to each executor |
//! | `num-waiting-apps` | number of applications in wait state |
//! | `total-available-cores` | number of available cores |
//! | `query-duration` | completion time of a given query (the label) |
//!
//! One extra column, `query-code`, carries the (numeric) known-query
//! identifier: §4.2's Similarity Checker "reference identifier, along with
//! other inputs, is then used to deduce the request's resource-needs".

use serde::{Deserialize, Serialize};

use smartpick_cloudsim::CloudEnv;
use smartpick_engine::Allocation;

/// Number of feature columns (excluding the `query-duration` label).
pub const N_FEATURES: usize = 10;

/// Column index of the `query-code` feature in vector order.
pub const QUERY_CODE_COL: usize = 0;

/// Column index of the `input-size` feature in vector order.
pub const INPUT_BYTES_COL: usize = 3;

/// Feature column names in vector order.
pub const FEATURE_NAMES: [&str; N_FEATURES] = [
    "query-code",
    "n-vm",
    "n-sl",
    "input-size",
    "start-time-epoch",
    "total-memory",
    "available-memory",
    "memory-per-executor",
    "num-waiting-apps",
    "total-available-cores",
];

/// One Table 3 feature row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryFeatures {
    /// Numeric code of the (known or similarity-matched) query.
    pub query_code: f64,
    /// VMs in the configuration.
    pub n_vm: u32,
    /// SLs in the configuration.
    pub n_sl: u32,
    /// Input size in bytes.
    pub input_bytes: f64,
    /// Job submit time, seconds since epoch.
    pub start_epoch: f64,
    /// Total memory of available workers, MiB.
    pub total_memory_mib: f64,
    /// Memory currently available across workers, MiB.
    pub available_memory_mib: f64,
    /// Memory per executor, MiB.
    pub memory_per_executor_mib: f64,
    /// Applications in wait state.
    pub num_waiting_apps: f64,
    /// Total available cores.
    pub total_available_cores: f64,
}

impl QueryFeatures {
    /// Builds the deterministic parts of the feature row from an allocation
    /// and environment; context fields (epoch, waiting apps, available
    /// memory) start at idle defaults and can be overridden.
    pub fn for_allocation(
        query_code: f64,
        input_gb: f64,
        alloc: &Allocation,
        env: &CloudEnv,
    ) -> Self {
        let worker_mem = env.catalog().worker_vm().memory_mib as f64;
        let n = alloc.total_instances() as f64;
        let total_memory = n * worker_mem;
        let cores = alloc.total_instances() as f64 * env.catalog().worker_vm().vcpus as f64;
        QueryFeatures {
            query_code,
            n_vm: alloc.n_vm,
            n_sl: alloc.n_sl,
            input_bytes: Self::input_gb_to_bytes(input_gb),
            start_epoch: 0.0,
            total_memory_mib: total_memory,
            available_memory_mib: total_memory,
            memory_per_executor_mib: worker_mem,
            num_waiting_apps: 0.0,
            total_available_cores: cores,
        }
    }

    /// Sets the submission epoch.
    pub fn with_start_epoch(mut self, epoch: f64) -> Self {
        self.start_epoch = epoch;
        self
    }

    /// Sets the cluster-contention context (waiting apps and the fraction
    /// of worker memory still available).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= available_frac <= 1.0`.
    pub fn with_contention(mut self, waiting_apps: u32, available_frac: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&available_frac),
            "available_frac must be a fraction"
        );
        self.num_waiting_apps = waiting_apps as f64;
        self.available_memory_mib = self.total_memory_mib * available_frac;
        self
    }

    /// The `input-size` feature's byte value for an input size in GB —
    /// the one conversion every feature builder (scalar and batched)
    /// must share so rows stay bit-identical across paths.
    pub fn input_gb_to_bytes(input_gb: f64) -> f64 {
        input_gb * 1024.0 * 1024.0 * 1024.0
    }

    /// The row as a fixed-size array in [`FEATURE_NAMES`] order — the
    /// allocation-free form the prediction hot path consumes.
    pub fn to_array(&self) -> [f64; N_FEATURES] {
        [
            self.query_code,
            self.n_vm as f64,
            self.n_sl as f64,
            self.input_bytes,
            self.start_epoch,
            self.total_memory_mib,
            self.available_memory_mib,
            self.memory_per_executor_mib,
            self.num_waiting_apps,
            self.total_available_cores,
        ]
    }

    /// Writes the row into a caller-provided `N_FEATURES`-wide slice (one
    /// row of a batched candidate matrix), allocating nothing.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not exactly `N_FEATURES` wide.
    pub fn write_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), N_FEATURES, "row width mismatch");
        out.copy_from_slice(&self.to_array());
    }

    /// The row as an ML feature vector, in [`FEATURE_NAMES`] order.
    pub fn to_vec(&self) -> Vec<f64> {
        self.to_array().to_vec()
    }

    /// Feature names as owned strings (dataset column headers).
    pub fn names() -> Vec<String> {
        FEATURE_NAMES.iter().map(|s| (*s).to_owned()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartpick_cloudsim::Provider;

    #[test]
    fn vector_matches_schema_width() {
        let env = CloudEnv::new(Provider::Aws);
        let f = QueryFeatures::for_allocation(1.0, 100.0, &Allocation::new(3, 2), &env);
        let v = f.to_vec();
        assert_eq!(v.len(), N_FEATURES);
        assert_eq!(v.len(), QueryFeatures::names().len());
        assert_eq!(v[1], 3.0);
        assert_eq!(v[2], 2.0);
    }

    #[test]
    fn memory_and_cores_derive_from_allocation() {
        let env = CloudEnv::new(Provider::Aws);
        let f = QueryFeatures::for_allocation(0.0, 100.0, &Allocation::new(4, 6), &env);
        assert_eq!(f.total_memory_mib, 10.0 * 2048.0);
        assert_eq!(f.total_available_cores, 20.0);
        assert_eq!(f.memory_per_executor_mib, 2048.0);
    }

    #[test]
    fn contention_scales_available_memory() {
        let env = CloudEnv::new(Provider::Aws);
        let f = QueryFeatures::for_allocation(0.0, 100.0, &Allocation::new(2, 0), &env)
            .with_contention(3, 0.5);
        assert_eq!(f.num_waiting_apps, 3.0);
        assert_eq!(f.available_memory_mib, f.total_memory_mib / 2.0);
    }

    #[test]
    #[should_panic]
    fn bad_fraction_panics() {
        let env = CloudEnv::new(Provider::Aws);
        let _ = QueryFeatures::for_allocation(0.0, 1.0, &Allocation::new(1, 0), &env)
            .with_contention(0, 1.5);
    }

    #[test]
    fn array_vec_and_write_into_agree() {
        let env = CloudEnv::new(Provider::Aws);
        let f = QueryFeatures::for_allocation(4.0, 250.0, &Allocation::new(3, 5), &env)
            .with_start_epoch(123.0)
            .with_contention(2, 0.75);
        let arr = f.to_array();
        assert_eq!(arr.to_vec(), f.to_vec());
        let mut row = [0.0; N_FEATURES];
        f.write_into(&mut row);
        assert_eq!(row, arr);
        assert_eq!(arr[QUERY_CODE_COL], 4.0);
        assert_eq!(
            arr[INPUT_BYTES_COL],
            QueryFeatures::input_gb_to_bytes(250.0)
        );
        assert_eq!(FEATURE_NAMES[QUERY_CODE_COL], "query-code");
        assert_eq!(FEATURE_NAMES[INPUT_BYTES_COL], "input-size");
    }

    #[test]
    fn serde_round_trip() {
        let env = CloudEnv::new(Provider::Aws);
        let f = QueryFeatures::for_allocation(2.0, 100.0, &Allocation::new(1, 1), &env);
        let json = serde_json::to_string(&f).unwrap();
        let back: QueryFeatures = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
    }
}
