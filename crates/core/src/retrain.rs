//! Event-driven background retraining (§4.2, §5 "Prediction model
//! updates").
//!
//! An independent monitor compares each run's actual completion time with
//! the prediction; when the difference exceeds
//! `smartpick.train.errorDifference.trigger`, a background retraining task
//! re-tunes the model: the offending samples are inflated with the ±5%
//! data-burst heuristic and appended to the forest `warm_start`-style.
//! A second, batch-based path retrains whenever `max.batch` samples have
//! accumulated, keeping the model incrementally up-to-date. Where the
//! retraining runs (same instance if enough RAM, otherwise a fresh one) is
//! governed by `pref.sameInstance` / `min.ram.gb`.

use smartpick_engine::{Allocation, RelayPolicy};
use smartpick_ml::dataset::Dataset;

use crate::error::SmartpickError;
use crate::features::QueryFeatures;
use crate::planner::UniformWorkload;
use crate::properties::SmartpickProperties;
use crate::wp::WorkloadPredictor;

/// The live ensemble is kept at no more than this multiple of the
/// configured tree count: each retrain adds one configured-size batch and
/// the oldest batch beyond the cap is retired, so stale knowledge ages
/// out while prediction latency and memory stay bounded.
const ENSEMBLE_CAP_FACTOR: usize = 4;

/// Where a retraining task runs (§5): the paper observes same-instance
/// retraining interferes with the running job and recommends a separate
/// instance (§6.5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrainLocation {
    /// In-place on the driver instance (needs `min.ram.gb` free).
    SameInstance,
    /// On a freshly spawned instance.
    SeparateInstance,
}

/// Why a retraining task fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrainTrigger {
    /// |actual − predicted| exceeded `errorDifference.trigger`.
    ErrorDifference,
    /// `max.batch` samples accumulated.
    BatchFull,
}

/// Serialises as `"same-instance"` / `"separate-instance"`.
impl serde::Serialize for RetrainLocation {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(
            match self {
                RetrainLocation::SameInstance => "same-instance",
                RetrainLocation::SeparateInstance => "separate-instance",
            }
            .to_owned(),
        )
    }
}

impl serde::Deserialize for RetrainLocation {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Str(s) if s == "same-instance" => Ok(RetrainLocation::SameInstance),
            serde::Value::Str(s) if s == "separate-instance" => {
                Ok(RetrainLocation::SeparateInstance)
            }
            other => Err(serde::DeError(format!(
                "expected a retrain location, got {other:?}"
            ))),
        }
    }
}

/// Serialises as `"error-difference"` / `"batch-full"`.
impl serde::Serialize for RetrainTrigger {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(
            match self {
                RetrainTrigger::ErrorDifference => "error-difference",
                RetrainTrigger::BatchFull => "batch-full",
            }
            .to_owned(),
        )
    }
}

impl serde::Deserialize for RetrainTrigger {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Str(s) if s == "error-difference" => Ok(RetrainTrigger::ErrorDifference),
            serde::Value::Str(s) if s == "batch-full" => Ok(RetrainTrigger::BatchFull),
            other => Err(serde::DeError(format!(
                "expected a retrain trigger, got {other:?}"
            ))),
        }
    }
}

/// Outcome of one retraining task.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RetrainReport {
    /// What fired it.
    pub trigger: RetrainTrigger,
    /// Where it ran.
    pub location: RetrainLocation,
    /// Samples (after burst) the forest was extended with.
    pub samples_used: usize,
    /// Trees added to the ensemble.
    pub trees_added: usize,
}

/// The retraining monitor: accumulates observations and fires retraining
/// tasks per the configured policy.
#[derive(Debug)]
pub struct RetrainMonitor {
    props: SmartpickProperties,
    pending: Dataset,
    /// Free driver RAM in GB, for the same-instance decision (simulated;
    /// defaults to 16 GB master minus workload headroom).
    pub free_ram_gb: u32,
    retrain_count: usize,
}

impl RetrainMonitor {
    /// Creates a monitor with the given properties.
    pub fn new(props: SmartpickProperties) -> Self {
        RetrainMonitor {
            props,
            pending: Dataset::new(QueryFeatures::names()),
            free_ram_gb: 8,
            retrain_count: 0,
        }
    }

    /// Rebuilds a monitor from checkpointed state — the persistence
    /// restore path. `pending` must carry the [`QueryFeatures::names`]
    /// schema (callers rebuild it row by row from persisted samples).
    pub fn restore(
        props: SmartpickProperties,
        pending: Dataset,
        free_ram_gb: u32,
        retrain_count: usize,
    ) -> Self {
        RetrainMonitor {
            props,
            pending,
            free_ram_gb,
            retrain_count,
        }
    }

    /// The samples waiting for the next batch retrain.
    pub fn pending(&self) -> &Dataset {
        &self.pending
    }

    /// Number of retraining tasks fired so far.
    pub fn retrain_count(&self) -> usize {
        self.retrain_count
    }

    /// Samples waiting for the next batch retrain.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Records one completed run and decides whether retraining fires.
    ///
    /// Every observation joins the pending batch; the error-difference rule
    /// fires immediately on a bad prediction, the batch rule when the
    /// pending set reaches `max.batch`.
    pub fn observe(
        &mut self,
        features: &QueryFeatures,
        predicted_seconds: f64,
        actual_seconds: f64,
    ) -> Option<RetrainTrigger> {
        self.pending.push(features.to_vec(), actual_seconds);
        let error = (actual_seconds - predicted_seconds).abs();
        if error > self.props.error_difference_trigger_secs {
            return Some(RetrainTrigger::ErrorDifference);
        }
        if self.pending.len() >= self.props.max_batch {
            return Some(RetrainTrigger::BatchFull);
        }
        None
    }

    /// Where the task will run, per `pref.sameInstance` and `min.ram.gb`.
    pub fn location(&self) -> RetrainLocation {
        if self.props.same_instance_retrain && self.free_ram_gb >= self.props.min_ram_gb {
            RetrainLocation::SameInstance
        } else {
            RetrainLocation::SeparateInstance
        }
    }

    /// Executes a retraining task against `predictor`: bursts the pending
    /// samples ±5%, extends the forest with `warm_start`, and clears the
    /// batch.
    ///
    /// # Errors
    ///
    /// Returns [`SmartpickError::NoTrainingData`] when nothing is pending,
    /// or a model error from the forest extension.
    pub fn retrain(
        &mut self,
        predictor: &mut WorkloadPredictor,
        trigger: RetrainTrigger,
        seed: u64,
    ) -> Result<RetrainReport, SmartpickError> {
        if self.pending.is_empty() {
            return Err(SmartpickError::NoTrainingData);
        }
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut burst = self.pending.burst(10, 0.05, &mut rng);
        if trigger == RetrainTrigger::ErrorDifference {
            // A surprising run means the model's picture of this query is
            // wrong across the whole grid, not just at the observed point.
            let (x, y) = self.pending.sample(self.pending.len() - 1);
            for (fx, fy) in synthesize_capacity_sweep(predictor, x, y) {
                burst.push(fx, fy);
            }
        }
        let trees_added = predictor.forest().params().n_trees;
        predictor
            .forest_mut()
            .warm_start_extend(&burst, trees_added, seed ^ 0xAD0BE)?;
        // Bound the ensemble: retire the oldest *retrained* batch beyond
        // the cap, but never the original training base — those are the
        // only trees guaranteed to cover every known query.
        let cap = trees_added * ENSEMBLE_CAP_FACTOR;
        let live = predictor.forest().n_trees();
        if live > cap {
            predictor
                .forest_mut()
                .retire_oldest(live - cap, trees_added);
        }
        self.pending = Dataset::new(QueryFeatures::names());
        self.retrain_count += 1;
        Ok(RetrainReport {
            trigger,
            location: self.location(),
            samples_used: burst.len(),
            trees_added,
        })
    }
}

/// Sample points along one allocation axis: the small counts where the
/// capacity curve bends, plus the bound itself.
fn axis_points(max: u32) -> Vec<u32> {
    let mut pts: Vec<u32> = [0u32, 1, 2, 4].into_iter().filter(|&v| v < max).collect();
    pts.push(max);
    pts
}

/// Planner-calibrated pseudo-samples for an error-difference retrain.
///
/// Retraining on observed runs alone teaches the forest nothing about
/// *other* allocations in the new regime, so the next search happily
/// chases stale (optimistic) predictions at unexplored configurations.
/// Instead, the analytical planner's capacity curve is calibrated so it
/// passes through the observed `(allocation, actual_seconds)` point, then
/// sampled across the `{nVM, nSL}` grid — one synthetic row per point —
/// teaching the forest how the new regime scales with capacity in a
/// single retrain. Returns no samples when the triggering row cannot be
/// resolved to a known query or the planner estimate is unusable.
fn synthesize_capacity_sweep(
    predictor: &WorkloadPredictor,
    trigger_features: &[f64],
    actual_seconds: f64,
) -> Vec<(Vec<f64>, f64)> {
    // Feature layout per `features::FEATURE_NAMES`. The feature row does
    // not carry the relay policy, so it is reconstructed with the same
    // rule the predictor applies when determining allocations.
    let code = trigger_features[0];
    let (n_vm_obs, n_sl_obs) = (trigger_features[1] as u32, trigger_features[2] as u32);
    let relay_for = |n_vm: u32, n_sl: u32| {
        if predictor.relay_aware() && n_vm > 0 && n_sl > 0 {
            RelayPolicy::Relay
        } else {
            RelayPolicy::None
        }
    };
    let observed = Allocation::new(n_vm_obs, n_sl_obs).with_relay(relay_for(n_vm_obs, n_sl_obs));
    let input_gb = trigger_features[3] / (1024.0 * 1024.0 * 1024.0);
    let Some(known) = predictor
        .known_queries()
        .iter()
        .find(|k| (k.code - code).abs() < 0.5)
    else {
        return Vec::new();
    };
    // Task counts scale with data size relative to the registered profile.
    let scale = if known.input_gb > 0.0 {
        input_gb / known.input_gb
    } else {
        1.0
    };
    let workload = UniformWorkload {
        tasks: ((known.workload.tasks as f64 * scale).round() as usize).max(1),
        task_secs_on_vm: known.workload.task_secs_on_vm,
    };
    let planner = predictor.planner();
    let expected_observed = planner.expected_seconds(&workload, &observed);
    if !expected_observed.is_finite() || expected_observed <= 0.0 || actual_seconds <= 0.0 {
        return Vec::new();
    }
    // Multiplicative calibration through the observed point, clamped so a
    // single noisy run cannot swing the whole sweep wildly.
    let ratio = (actual_seconds / expected_observed).clamp(0.2, 5.0);
    let (max_vm, max_sl) = predictor.search_bounds();
    let mut out = Vec::new();
    for n_vm in axis_points(max_vm) {
        for n_sl in axis_points(max_sl) {
            if n_vm + n_sl == 0 {
                continue;
            }
            let alloc = Allocation::new(n_vm, n_sl).with_relay(relay_for(n_vm, n_sl));
            let est = planner.expected_seconds(&workload, &alloc) * ratio;
            if !est.is_finite() || est <= 0.0 {
                continue;
            }
            let features = QueryFeatures::for_allocation(code, input_gb, &alloc, predictor.env());
            out.push((features.to_vec(), est));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartpick_cloudsim::{CloudEnv, Provider};
    use smartpick_engine::Allocation;
    use smartpick_ml::forest::ForestParams;
    use smartpick_workloads::tpcds;

    fn trained_predictor() -> WorkloadPredictor {
        let env = CloudEnv::new(Provider::Aws);
        let queries = vec![tpcds::query(82, 100.0).unwrap()];
        let opts = crate::training::TrainOptions {
            configs_per_query: 6,
            burst_factor: 3,
            forest: ForestParams {
                n_trees: 20,
                ..ForestParams::default()
            },
            max_vm: 4,
            max_sl: 4,
            ..crate::training::TrainOptions::default()
        };
        crate::training::train_predictor(&env, &queries, &opts, 9)
            .unwrap()
            .0
    }

    fn features(actual_code: f64) -> QueryFeatures {
        let env = CloudEnv::new(Provider::Aws);
        QueryFeatures::for_allocation(actual_code, 100.0, &Allocation::new(2, 2), &env)
    }

    #[test]
    fn error_difference_fires() {
        let props = SmartpickProperties {
            error_difference_trigger_secs: 10.0,
            ..SmartpickProperties::default()
        };
        let mut mon = RetrainMonitor::new(props);
        assert_eq!(mon.observe(&features(0.0), 50.0, 55.0), None);
        assert_eq!(
            mon.observe(&features(0.0), 50.0, 75.0),
            Some(RetrainTrigger::ErrorDifference)
        );
    }

    #[test]
    fn batch_rule_fires_at_max_batch() {
        let props = SmartpickProperties {
            max_batch: 3,
            error_difference_trigger_secs: 1e9,
            ..SmartpickProperties::default()
        };
        let mut mon = RetrainMonitor::new(props);
        assert_eq!(mon.observe(&features(0.0), 10.0, 10.0), None);
        assert_eq!(mon.observe(&features(0.0), 10.0, 10.0), None);
        assert_eq!(
            mon.observe(&features(0.0), 10.0, 10.0),
            Some(RetrainTrigger::BatchFull)
        );
    }

    #[test]
    fn location_follows_properties() {
        let props = SmartpickProperties {
            same_instance_retrain: true,
            min_ram_gb: 4,
            ..SmartpickProperties::default()
        };
        let mon = RetrainMonitor::new(props.clone());
        assert_eq!(mon.location(), RetrainLocation::SameInstance);
        let mut mon = RetrainMonitor::new(props);
        mon.free_ram_gb = 2;
        assert_eq!(mon.location(), RetrainLocation::SeparateInstance);
        let mon = RetrainMonitor::new(SmartpickProperties::default());
        assert_eq!(mon.location(), RetrainLocation::SeparateInstance);
    }

    #[test]
    fn retrain_shifts_predictions_toward_new_truth() {
        let mut predictor = trained_predictor();
        let props = SmartpickProperties {
            error_difference_trigger_secs: 10.0,
            ..SmartpickProperties::default()
        };
        let mut mon = RetrainMonitor::new(props);

        // A new regime: this feature row actually takes 400 s.
        let f = features(1.0);
        let before = predictor.forest().predict(&f.to_vec());
        let trigger = mon.observe(&f, before, 400.0).expect("big error fires");
        let report = mon.retrain(&mut predictor, trigger, 77).unwrap();
        assert!(report.samples_used >= 10);
        assert_eq!(report.trees_added, 20);
        let after = predictor.forest().predict(&f.to_vec());
        assert!(
            (after - 400.0).abs() < (before - 400.0).abs() * 0.7,
            "prediction should converge: before {before}, after {after}"
        );
        assert_eq!(mon.pending_len(), 0);
        assert_eq!(mon.retrain_count(), 1);
    }

    #[test]
    fn retrain_without_pending_errors() {
        let mut predictor = trained_predictor();
        let mut mon = RetrainMonitor::new(SmartpickProperties::default());
        assert!(matches!(
            mon.retrain(&mut predictor, RetrainTrigger::BatchFull, 0),
            Err(SmartpickError::NoTrainingData)
        ));
    }
}
