//! Initial prediction-model training (§5 "Training prediction model",
//! §6.1 "Building Prediction Models").
//!
//! The recipe, verbatim from the paper: run 20 randomly selected `{VM, SL}`
//! configurations for each of the 5 representational TPC-DS queries;
//! apply the ±5% data-burst heuristic to inflate the samples ~10×
//! (→ 1000 samples); shuffle; split 80:20; fit the Random Forest; and
//! measure RMSE, the regression standard error, and the "within 2×
//! standard error" accuracy on the held-out set (§6.2, Figure 4).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use smartpick_cloudsim::CloudEnv;
use smartpick_engine::{QueryProfile, RelayPolicy};
use smartpick_ml::dataset::Dataset;
use smartpick_ml::forest::{ForestParams, RandomForest};
use smartpick_ml::metrics;
use smartpick_workloads::training::{run_random_configs, TrainingRunOptions};

use crate::error::SmartpickError;
use crate::features::QueryFeatures;
use crate::similarity::SimilarityChecker;
use crate::wp::{approximate_workload, KnownQuery, WorkloadPredictor};

/// Options for the initial training pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainOptions {
    /// Random configurations per query (paper: 20).
    pub configs_per_query: usize,
    /// Data-burst multiplier (paper: ~10×).
    pub burst_factor: usize,
    /// Data-burst jitter (paper: ±5%).
    pub burst_jitter: f64,
    /// Training fraction of the hold-out split (paper: 0.8).
    pub train_frac: f64,
    /// Forest hyperparameters.
    pub forest: ForestParams,
    /// Search-space bound for the predictor, VMs.
    pub max_vm: u32,
    /// Search-space bound for the predictor, SLs.
    pub max_sl: u32,
    /// Minimum total instances per configuration, for both the training
    /// runs and the prediction-time search space.
    pub min_total: u32,
    /// Train the relay-aware model (Smartpick-r) instead of plain
    /// Smartpick.
    pub relay: bool,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            configs_per_query: 20,
            burst_factor: 10,
            burst_jitter: 0.05,
            train_frac: 0.8,
            forest: ForestParams::default(),
            max_vm: 10,
            max_sl: 10,
            min_total: 4,
            relay: false,
        }
    }
}

/// Quality report of a trained model (the data behind Figure 4).
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Root-mean-squared error on the held-out set, seconds.
    pub rmse: f64,
    /// Regression standard error, seconds.
    pub stderr: f64,
    /// The paper's headline accuracy: % of test samples whose prediction
    /// lies within the ±10 s yardstick of §6.2 ("98.5% of the predicted
    /// samples lie within 10 seconds difference"), which the paper
    /// justifies as roughly 2× the standard error of its best model.
    pub accuracy_pct: f64,
    /// Accuracy under the self-normalising 2×-own-stderr criterion.
    pub accuracy_2stderr_pct: f64,
    /// Held-out truths (for histograms / scatter plots).
    pub test_truth: Vec<f64>,
    /// Held-out predictions.
    pub test_pred: Vec<f64>,
    /// Training-set size after the burst.
    pub n_train: usize,
    /// Test-set size.
    pub n_test: usize,
}

/// Builds the raw (pre-burst) dataset by running random configurations of
/// every query, tagging each sample with its query code and a randomised
/// submission context.
///
/// # Errors
///
/// Propagates engine failures; returns [`SmartpickError::NoTrainingData`]
/// when `queries` is empty.
pub fn build_raw_dataset(
    env: &CloudEnv,
    queries: &[QueryProfile],
    options: &TrainOptions,
    seed: u64,
) -> Result<Dataset, SmartpickError> {
    if queries.is_empty() {
        return Err(SmartpickError::NoTrainingData);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Dataset::new(QueryFeatures::names());
    let run_opts = TrainingRunOptions {
        configs_per_query: options.configs_per_query,
        max_vm: options.max_vm,
        max_sl: options.max_sl,
        min_total: options.min_total,
        relay: if options.relay {
            RelayPolicy::Relay
        } else {
            RelayPolicy::None
        },
    };
    for (code, query) in queries.iter().enumerate() {
        let samples = run_random_configs(query, env, &run_opts, rng.gen())?;
        for s in samples {
            let features =
                QueryFeatures::for_allocation(code as f64, query.input_gb, &s.allocation, env)
                    .with_start_epoch(rng.gen_range(0.0..86_400.0))
                    .with_contention(rng.gen_range(0..4), rng.gen_range(0.6..1.0));
            data.push(features.to_vec(), s.report.seconds());
        }
    }
    Ok(data)
}

/// Runs the full §5 training pipeline and assembles a ready
/// [`WorkloadPredictor`] plus its quality report.
///
/// # Errors
///
/// Propagates engine and model-fitting failures.
pub fn train_predictor(
    env: &CloudEnv,
    queries: &[QueryProfile],
    options: &TrainOptions,
    seed: u64,
) -> Result<(WorkloadPredictor, TrainReport), SmartpickError> {
    let raw = build_raw_dataset(env, queries, options, seed)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB0B5);
    let burst = raw.burst(options.burst_factor, options.burst_jitter, &mut rng);
    let (train, test) = burst.split(options.train_frac, &mut rng);

    let forest = RandomForest::fit(&train, &options.forest, seed ^ 0xF0F0)?;

    let test_truth: Vec<f64> = test.targets().to_vec();
    let test_pred: Vec<f64> = forest.predict_batch(test.features());
    let report = TrainReport {
        rmse: metrics::rmse(&test_truth, &test_pred),
        stderr: metrics::regression_std_error(&test_truth, &test_pred),
        accuracy_pct: metrics::accuracy_within(&test_truth, &test_pred, 10.0) * 100.0,
        accuracy_2stderr_pct: metrics::paper_accuracy_percent(&test_truth, &test_pred),
        n_train: train.len(),
        n_test: test.len(),
        test_truth,
        test_pred,
    };

    let mut sc = SimilarityChecker::new();
    let mut known = Vec::with_capacity(queries.len());
    for (code, query) in queries.iter().enumerate() {
        sc.register(query);
        known.push(KnownQuery {
            id: query.id.clone(),
            code: code as f64,
            input_gb: query.input_gb,
            workload: approximate_workload(query, env),
        });
    }
    let predictor = WorkloadPredictor::assemble(
        env.clone(),
        forest,
        known,
        sc,
        options.relay,
        report.stderr,
        options.max_vm,
        options.max_sl,
        options.min_total,
    );
    Ok((predictor, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wp::{ConstraintMode, PredictionRequest, WorkloadPredictionService};
    use smartpick_cloudsim::Provider;
    use smartpick_workloads::tpcds;

    fn quick_options() -> TrainOptions {
        TrainOptions {
            configs_per_query: 8,
            burst_factor: 4,
            forest: ForestParams {
                n_trees: 30,
                ..ForestParams::default()
            },
            max_vm: 6,
            max_sl: 6,
            ..TrainOptions::default()
        }
    }

    fn training_queries() -> Vec<QueryProfile> {
        [82u32, 68]
            .iter()
            .map(|&q| tpcds::query(q, 100.0).unwrap())
            .collect()
    }

    #[test]
    fn dataset_has_paper_shape() {
        let env = CloudEnv::new(Provider::Aws);
        let opts = quick_options();
        let raw = build_raw_dataset(&env, &training_queries(), &opts, 1).unwrap();
        assert_eq!(raw.len(), 2 * 8);
        assert_eq!(raw.n_features(), crate::features::N_FEATURES);
    }

    #[test]
    fn trained_predictor_is_reasonably_accurate() {
        let env = CloudEnv::new(Provider::Aws);
        let (predictor, report) =
            train_predictor(&env, &training_queries(), &quick_options(), 2).unwrap();
        // The quick test model is deliberately under-trained, so judge it
        // by the self-normalising criterion; the 10 s yardstick is for the
        // full recipe (see the fig4 harness).
        assert!(
            report.accuracy_2stderr_pct > 85.0,
            "accuracy {}",
            report.accuracy_2stderr_pct
        );
        assert!(report.rmse < 30.0, "rmse {}", report.rmse);
        assert_eq!(predictor.known_queries().len(), 2);
        assert_eq!(report.n_train + report.n_test, 2 * 8 * 4);
    }

    #[test]
    fn determinations_prefer_hybrid_for_best_performance() {
        let env = CloudEnv::new(Provider::Aws);
        let (predictor, _) =
            train_predictor(&env, &training_queries(), &quick_options(), 3).unwrap();
        let req = PredictionRequest::new(tpcds::query(68, 100.0).unwrap(), 11);
        let det = predictor.determine(&req).unwrap();
        assert!(det.known_query);
        assert!(det.allocation.is_viable());
        assert!(det.predicted_seconds > 0.0);
        assert!(!det.et_list.is_empty());
        // Best-performance configurations use serverless to cover the
        // cold-boot window.
        assert!(det.allocation.n_sl > 0, "got {}", det.allocation);
    }

    #[test]
    fn constraint_modes_restrict_search() {
        let env = CloudEnv::new(Provider::Aws);
        let (predictor, _) =
            train_predictor(&env, &training_queries(), &quick_options(), 4).unwrap();
        let q = tpcds::query(82, 100.0).unwrap();
        for (mode, check) in [
            (
                ConstraintMode::VmOnly,
                Box::new(|a: &smartpick_engine::Allocation| a.n_sl == 0)
                    as Box<dyn Fn(&smartpick_engine::Allocation) -> bool>,
            ),
            (ConstraintMode::SlOnly, Box::new(|a| a.n_vm == 0)),
            (ConstraintMode::EqualSlVm, Box::new(|a| a.n_vm == a.n_sl)),
        ] {
            let det = predictor
                .determine(&PredictionRequest {
                    query: q.clone(),
                    knob: 0.0,
                    constraint: mode,
                    seed: 5,
                })
                .unwrap();
            assert!(check(&det.allocation), "{mode:?} gave {}", det.allocation);
        }
    }

    #[test]
    fn alien_query_is_similarity_matched() {
        let env = CloudEnv::new(Provider::Aws);
        let (predictor, _) =
            train_predictor(&env, &training_queries(), &quick_options(), 6).unwrap();
        // q62 is the catalog's alien counterpart of q68.
        let det = predictor
            .determine(&PredictionRequest::new(tpcds::query(62, 100.0).unwrap(), 8))
            .unwrap();
        assert!(!det.known_query);
        assert_eq!(det.matched_query, "tpcds-q68");
        assert!(det.match_similarity > 0.95);
    }

    #[test]
    fn knob_reduces_cost_within_latency_bound() {
        let env = CloudEnv::new(Provider::Aws);
        let (predictor, _) =
            train_predictor(&env, &training_queries(), &quick_options(), 7).unwrap();
        let q = tpcds::query(68, 100.0).unwrap();
        let base = predictor
            .determine(&PredictionRequest::new(q.clone(), 21))
            .unwrap();
        let knobbed = predictor
            .determine(&PredictionRequest {
                query: q,
                knob: 0.5,
                constraint: ConstraintMode::Hybrid,
                seed: 21,
            })
            .unwrap();
        assert!(
            knobbed.predicted_cost <= base.predicted_cost,
            "knob cost {} vs base {}",
            knobbed.predicted_cost,
            base.predicted_cost
        );
        assert!(knobbed.predicted_seconds <= base.predicted_seconds * 1.5 + 1e-9);
    }

    #[test]
    fn empty_training_set_rejected() {
        let env = CloudEnv::new(Provider::Aws);
        assert!(matches!(
            train_predictor(&env, &[], &quick_options(), 0),
            Err(SmartpickError::NoTrainingData)
        ));
    }
}
