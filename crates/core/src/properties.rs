//! The `smartpick.*` property set (the paper's Table 4).
//!
//! "Spark applications can easily utilize Smartpick by setting these
//! properties without any modification" (§5). Defaults match Table 4.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use smartpick_cloudsim::Provider;

use crate::error::SmartpickError;

/// Smartpick configuration properties (Table 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmartpickProperties {
    /// `smartpick.cloud.compute.provider` — target provider (default AWS).
    pub provider: Provider,
    /// `smartpick.cloud.compute.instanceFamily` — VM family (default `t3`).
    pub instance_family: String,
    /// `smartpick.cloud.compute.relay` — relay-instances on (default true).
    pub relay: bool,
    /// `smartpick.cloud.compute.knob` — cost–performance knob ε
    /// (default 0 = best performance).
    pub knob: f64,
    /// `smartpick.train.max.batch` — batch size for incremental retraining
    /// (default 100).
    pub max_batch: usize,
    /// `smartpick.train.pref.sameInstance` — retrain on the same instance
    /// (default false: use a separate instance, which §6.5.2 recommends).
    pub same_instance_retrain: bool,
    /// `smartpick.train.min.ram.gb` — minimum free RAM for same-instance
    /// retraining (default 4).
    pub min_ram_gb: u32,
    /// `smartpick.train.errorDifference.trigger` — retrain when
    /// |actual − predicted| exceeds this many seconds (default 50).
    pub error_difference_trigger_secs: f64,
}

impl Default for SmartpickProperties {
    fn default() -> Self {
        SmartpickProperties {
            provider: Provider::Aws,
            instance_family: "t3".to_owned(),
            relay: true,
            knob: 0.0,
            max_batch: 100,
            same_instance_retrain: false,
            min_ram_gb: 4,
            error_difference_trigger_secs: 50.0,
        }
    }
}

impl SmartpickProperties {
    /// Builds properties from `smartpick.*` key/value pairs, starting from
    /// the Table 4 defaults. Unknown keys are ignored (forward
    /// compatibility, as Spark does).
    ///
    /// # Errors
    ///
    /// Returns [`SmartpickError::InvalidProperty`] when a known key has an
    /// unparsable value.
    ///
    /// # Example
    ///
    /// ```
    /// use smartpick_core::properties::SmartpickProperties;
    /// use std::collections::BTreeMap;
    ///
    /// let mut kv = BTreeMap::new();
    /// kv.insert("smartpick.cloud.compute.provider".into(), "GCP".into());
    /// kv.insert("smartpick.cloud.compute.knob".into(), "0.5".into());
    /// let props = SmartpickProperties::from_pairs(&kv)?;
    /// assert_eq!(props.knob, 0.5);
    /// # Ok::<(), smartpick_core::SmartpickError>(())
    /// ```
    pub fn from_pairs(pairs: &BTreeMap<String, String>) -> Result<Self, SmartpickError> {
        let mut props = SmartpickProperties::default();
        for (key, value) in pairs {
            let invalid = || SmartpickError::InvalidProperty {
                key: key.clone(),
                value: value.clone(),
            };
            match key.as_str() {
                "smartpick.cloud.compute.provider" => {
                    props.provider = value.parse().map_err(|_| invalid())?;
                }
                "smartpick.cloud.compute.instanceFamily" => {
                    props.instance_family = value.clone();
                }
                "smartpick.cloud.compute.relay" => {
                    props.relay = parse_bool(value).ok_or_else(invalid)?;
                }
                "smartpick.cloud.compute.knob" => {
                    let knob: f64 = value.parse().map_err(|_| invalid())?;
                    if !(0.0..=10.0).contains(&knob) {
                        return Err(invalid());
                    }
                    props.knob = knob;
                }
                "smartpick.train.max.batch" => {
                    props.max_batch = value.parse().map_err(|_| invalid())?;
                }
                "smartpick.train.pref.sameInstance" => {
                    props.same_instance_retrain = parse_bool(value).ok_or_else(invalid)?;
                }
                "smartpick.train.min.ram.gb" => {
                    props.min_ram_gb = value.parse().map_err(|_| invalid())?;
                }
                "smartpick.train.errorDifference.trigger" => {
                    let t: f64 = value.parse().map_err(|_| invalid())?;
                    if t <= 0.0 {
                        return Err(invalid());
                    }
                    props.error_difference_trigger_secs = t;
                }
                _ => {}
            }
        }
        Ok(props)
    }

    /// Serialises back to Table 4 key/value pairs.
    pub fn to_pairs(&self) -> BTreeMap<String, String> {
        let mut kv = BTreeMap::new();
        kv.insert(
            "smartpick.cloud.compute.provider".to_owned(),
            self.provider.name().to_owned(),
        );
        kv.insert(
            "smartpick.cloud.compute.instanceFamily".to_owned(),
            self.instance_family.clone(),
        );
        kv.insert(
            "smartpick.cloud.compute.relay".to_owned(),
            self.relay.to_string(),
        );
        kv.insert(
            "smartpick.cloud.compute.knob".to_owned(),
            self.knob.to_string(),
        );
        kv.insert(
            "smartpick.train.max.batch".to_owned(),
            self.max_batch.to_string(),
        );
        kv.insert(
            "smartpick.train.pref.sameInstance".to_owned(),
            self.same_instance_retrain.to_string(),
        );
        kv.insert(
            "smartpick.train.min.ram.gb".to_owned(),
            self.min_ram_gb.to_string(),
        );
        kv.insert(
            "smartpick.train.errorDifference.trigger".to_owned(),
            self.error_difference_trigger_secs.to_string(),
        );
        kv
    }
}

fn parse_bool(s: &str) -> Option<bool> {
    match s.trim().to_ascii_lowercase().as_str() {
        "true" | "1" | "yes" => Some(true),
        "false" | "0" | "no" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_4() {
        let p = SmartpickProperties::default();
        assert_eq!(p.provider, Provider::Aws);
        assert_eq!(p.instance_family, "t3");
        assert!(p.relay);
        assert_eq!(p.knob, 0.0);
        assert_eq!(p.max_batch, 100);
        assert!(!p.same_instance_retrain);
        assert_eq!(p.min_ram_gb, 4);
        assert_eq!(p.error_difference_trigger_secs, 50.0);
    }

    #[test]
    fn round_trip_via_pairs() {
        let p = SmartpickProperties {
            provider: Provider::Gcp,
            knob: 0.8,
            relay: false,
            ..SmartpickProperties::default()
        };
        let back = SmartpickProperties::from_pairs(&p.to_pairs()).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn invalid_values_rejected() {
        for (k, v) in [
            ("smartpick.cloud.compute.provider", "azure"),
            ("smartpick.cloud.compute.knob", "-1"),
            ("smartpick.cloud.compute.relay", "maybe"),
            ("smartpick.train.errorDifference.trigger", "0"),
        ] {
            let mut kv = BTreeMap::new();
            kv.insert(k.to_owned(), v.to_owned());
            assert!(
                SmartpickProperties::from_pairs(&kv).is_err(),
                "{k}={v} should be rejected"
            );
        }
    }

    #[test]
    fn unknown_keys_ignored() {
        let mut kv = BTreeMap::new();
        kv.insert("smartpick.future.flag".to_owned(), "on".to_owned());
        assert!(SmartpickProperties::from_pairs(&kv).is_ok());
    }
}
