//! The Workload Prediction (WP) component: Random Forest + Bayesian
//! Optimizer (§3).
//!
//! `f(β) = RF_t` (Equation 1) predicts a query's completion time from the
//! Table 3 features; the Bayesian optimizer maximises `−(RF_t + δ)`
//! (Equation 2) over the `{nVM, nSL}` grid with Probability-of-Improvement
//! acquisition, stopping after 10 consecutive probes that improve the best
//! estimate by less than 1% (§3.1). Every probe lands in the
//! estimated-times list `ET_l`, which the knob of §3.3 traverses.
//!
//! The module is deliberately framed as a *service*
//! ([`WorkloadPredictionService`]) because the paper ships WP as a
//! standalone Thrift server that other serverless data-analytics systems
//! (Cocoa, SplitServe) can call (§5, §6.3.2); [`ConstraintMode`]
//! implements those integrations' restricted searches.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use smartpick_cloudsim::rngutil::sample_normal;
use smartpick_cloudsim::{CloudEnv, Money};
use smartpick_engine::{Allocation, QueryProfile, RelayPolicy};
use smartpick_ml::bayesopt::{BayesianOptimizer, BoParams, BoResult};
use smartpick_ml::forest::RandomForest;

use crate::error::SmartpickError;
use crate::features::{QueryFeatures, INPUT_BYTES_COL, N_FEATURES, QUERY_CODE_COL};
use crate::planner::{Planner, UniformWorkload};
use crate::similarity::SimilarityChecker;
use crate::tradeoff::{choose_with_knob, EtEntry};

/// A query the predictor was trained on.
#[derive(Debug, Clone, PartialEq)]
pub struct KnownQuery {
    /// Query identifier.
    pub id: String,
    /// Numeric code used as the `query-code` feature.
    pub code: f64,
    /// Input size the model saw, GB.
    pub input_gb: f64,
    /// Uniform-workload approximation for the planner's cost model.
    pub workload: UniformWorkload,
}

/// Which configurations the search may consider.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintMode {
    /// The full hybrid space (Smartpick).
    Hybrid,
    /// VMs only — the "tweaked WP" plugged into Cocoa/SplitServe (§6.3.2).
    VmOnly,
    /// SLs only (the SL-only baseline).
    SlOnly,
    /// Equal numbers of SLs and VMs — SplitServe's design constraint
    /// (§4.3).
    EqualSlVm,
}

impl ConstraintMode {
    /// The stable wire name (`"hybrid"` / `"vm_only"` / `"sl_only"` /
    /// `"equal_sl_vm"`).
    pub fn name(&self) -> &'static str {
        match self {
            ConstraintMode::Hybrid => "hybrid",
            ConstraintMode::VmOnly => "vm_only",
            ConstraintMode::SlOnly => "sl_only",
            ConstraintMode::EqualSlVm => "equal_sl_vm",
        }
    }
}

/// Serialises as the stable wire name.
impl serde::Serialize for ConstraintMode {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name().to_owned())
    }
}

impl serde::Deserialize for ConstraintMode {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Str(s) => match s.as_str() {
                "hybrid" => Ok(ConstraintMode::Hybrid),
                "vm_only" => Ok(ConstraintMode::VmOnly),
                "sl_only" => Ok(ConstraintMode::SlOnly),
                "equal_sl_vm" => Ok(ConstraintMode::EqualSlVm),
                other => Err(serde::DeError(format!("unknown constraint mode `{other}`"))),
            },
            other => Err(serde::DeError(format!(
                "expected a constraint-mode name, got {other:?}"
            ))),
        }
    }
}

/// A prediction request.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PredictionRequest {
    /// The query to size.
    pub query: QueryProfile,
    /// Cost–performance knob ε (0 = best performance).
    pub knob: f64,
    /// Search-space constraint.
    pub constraint: ConstraintMode,
    /// Seed for the stochastic parts of the search.
    pub seed: u64,
}

impl PredictionRequest {
    /// A best-performance hybrid request.
    pub fn new(query: QueryProfile, seed: u64) -> Self {
        PredictionRequest {
            query,
            knob: 0.0,
            constraint: ConstraintMode::Hybrid,
            seed,
        }
    }
}

/// The outcome of a resource determination.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Determination {
    /// The chosen configuration (relay policy already applied).
    pub allocation: Allocation,
    /// Predicted completion time for the chosen configuration, seconds.
    pub predicted_seconds: f64,
    /// Planner-estimated cost for the chosen configuration.
    pub predicted_cost: Money,
    /// The estimated-times list `ET_l` (§3.3), one entry per probe.
    pub et_list: Vec<EtEntry>,
    /// Objective evaluations the search spent.
    pub evaluations: usize,
    /// Whether the query was known (false = similarity-matched alien).
    pub known_query: bool,
    /// The known query the prediction was based on.
    pub matched_query: String,
    /// Cosine similarity of the match (1.0 for known queries).
    pub match_similarity: f64,
}

/// The workload-prediction service interface other SEDA systems call
/// (§5 exposes this over Thrift RPC; here it is a trait object boundary).
pub trait WorkloadPredictionService {
    /// Determines the optimal configuration for a request.
    ///
    /// # Errors
    ///
    /// Implementations return [`SmartpickError::UnknownQuery`] when the
    /// query cannot be matched to any known workload.
    fn determine(&self, request: &PredictionRequest) -> Result<Determination, SmartpickError>;

    /// Determines every request in one call, in request order. The
    /// contract is *result-identical to N sequential [`Self::determine`]
    /// calls* (each request keeps its own seed/knob/constraint);
    /// implementations may amortise model evaluation across the batch,
    /// which is exactly what the wire front-end's batched endpoint buys.
    ///
    /// # Errors
    ///
    /// Fails the whole batch on the first unmatchable query, before any
    /// partial results are produced.
    fn determine_batch(
        &self,
        requests: &[PredictionRequest],
    ) -> Result<Vec<Determination>, SmartpickError> {
        requests.iter().map(|r| self.determine(r)).collect()
    }
}

/// One constraint mode's precompiled search space: the BO candidate
/// coordinates plus the row-major Table-3 feature matrix template the
/// batched forest evaluation consumes. The template rows are complete
/// except for the two query-dependent columns (`query-code`,
/// `input-size`), which `determine()` fills in per request — everything
/// else (instances, memory, cores) depends only on the grid and the
/// environment, so it is computed exactly once per trained predictor.
#[derive(Debug)]
struct CandidateGrid {
    /// `[n_vm, n_sl]` per candidate, in the same nested-loop order the
    /// pre-cache implementation generated.
    candidates: Vec<Vec<f64>>,
    /// `candidates.len() × N_FEATURES` row-major feature rows with the
    /// query columns zeroed.
    feature_template: Vec<f64>,
}

impl CandidateGrid {
    fn build(env: &CloudEnv, coords: Vec<(u32, u32)>) -> CandidateGrid {
        let mut candidates = Vec::with_capacity(coords.len());
        let mut feature_template = vec![0.0; coords.len() * N_FEATURES];
        for ((n_vm, n_sl), row) in coords
            .iter()
            .copied()
            .zip(feature_template.chunks_exact_mut(N_FEATURES))
        {
            candidates.push(vec![n_vm as f64, n_sl as f64]);
            QueryFeatures::for_allocation(0.0, 0.0, &Allocation::new(n_vm, n_sl), env)
                .write_into(row);
        }
        CandidateGrid {
            candidates,
            feature_template,
        }
    }
}

/// The four constraint modes' grids, precompiled at assembly time and
/// shared by every clone/snapshot of the predictor (the bounds they are
/// keyed on — `max_vm`, `max_sl`, `min_total` — are fixed for the life
/// of a trained predictor).
#[derive(Debug)]
struct CandidateGrids {
    hybrid: CandidateGrid,
    vm_only: CandidateGrid,
    sl_only: CandidateGrid,
    equal_sl_vm: CandidateGrid,
}

impl CandidateGrids {
    fn build(env: &CloudEnv, max_vm: u32, max_sl: u32, min_total: u32) -> CandidateGrids {
        let coords = |constraint| grid_coords(max_vm, max_sl, min_total, constraint);
        CandidateGrids {
            hybrid: CandidateGrid::build(env, coords(ConstraintMode::Hybrid)),
            vm_only: CandidateGrid::build(env, coords(ConstraintMode::VmOnly)),
            sl_only: CandidateGrid::build(env, coords(ConstraintMode::SlOnly)),
            equal_sl_vm: CandidateGrid::build(env, coords(ConstraintMode::EqualSlVm)),
        }
    }

    fn get(&self, constraint: ConstraintMode) -> &CandidateGrid {
        match constraint {
            ConstraintMode::Hybrid => &self.hybrid,
            ConstraintMode::VmOnly => &self.vm_only,
            ConstraintMode::SlOnly => &self.sl_only,
            ConstraintMode::EqualSlVm => &self.equal_sl_vm,
        }
    }
}

/// The trained predictor: Random Forest + BO + Similarity Checker.
#[derive(Debug, Clone)]
pub struct WorkloadPredictor {
    env: CloudEnv,
    forest: RandomForest,
    known: Vec<KnownQuery>,
    /// Query id → index into `known`, maintained alongside it so id
    /// resolution is a hash lookup instead of a linear scan.
    index: HashMap<String, usize>,
    /// Precompiled per-constraint search spaces (immutable; shared by
    /// clones, so a retrained copy-on-write predictor reuses them).
    grids: Arc<CandidateGrids>,
    sc: SimilarityChecker,
    planner: Planner,
    /// Whether the model was trained on relay runs (Smartpick-r).
    relay_aware: bool,
    /// Regression standard error from training (drives the accuracy rule).
    stderr: f64,
    /// Search-space bounds (inclusive).
    max_vm: u32,
    /// Search-space bounds (inclusive).
    max_sl: u32,
    /// Minimum total instances a candidate may request — mirrors the
    /// training floor so the search never relies on extrapolated
    /// predictions for starving configurations.
    min_total: u32,
    bo: BoParams,
    /// σ of the δ observation noise in Equation 2.
    noise_sigma: f64,
}

impl WorkloadPredictor {
    /// Assembles a predictor from its parts (used by the training
    /// pipeline).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        env: CloudEnv,
        forest: RandomForest,
        known: Vec<KnownQuery>,
        sc: SimilarityChecker,
        relay_aware: bool,
        stderr: f64,
        max_vm: u32,
        max_sl: u32,
        min_total: u32,
    ) -> Self {
        let index = known
            .iter()
            .enumerate()
            .map(|(i, k)| (k.id.clone(), i))
            .collect();
        WorkloadPredictor {
            planner: Planner::new(env.clone()),
            grids: Arc::new(CandidateGrids::build(
                &env,
                max_vm,
                max_sl,
                min_total.max(1),
            )),
            env,
            forest,
            known,
            index,
            sc,
            relay_aware,
            stderr,
            max_vm,
            max_sl,
            min_total: min_total.max(1),
            bo: BoParams {
                acq_subsample: Some(64),
                ..BoParams::default()
            },
            noise_sigma: 0.25,
        }
    }

    /// The environment the predictor was trained for.
    pub fn env(&self) -> &CloudEnv {
        &self.env
    }

    /// Whether the model was trained on relay runs (Smartpick-r).
    pub fn relay_aware(&self) -> bool {
        self.relay_aware
    }

    /// The regression standard error measured at training time.
    pub fn stderr(&self) -> f64 {
        self.stderr
    }

    /// The known queries.
    pub fn known_queries(&self) -> &[KnownQuery] {
        &self.known
    }

    /// The inclusive `{nVM, nSL}` search-space bounds.
    pub fn search_bounds(&self) -> (u32, u32) {
        (self.max_vm, self.max_sl)
    }

    /// The minimum total instances a candidate may request (the training
    /// floor the searches honour).
    pub fn min_total(&self) -> u32 {
        self.min_total
    }

    /// The similarity checker (alien-query matching state).
    pub fn similarity(&self) -> &SimilarityChecker {
        &self.sc
    }

    /// Mutable access to the underlying forest (background retraining).
    pub(crate) fn forest_mut(&mut self) -> &mut RandomForest {
        &mut self.forest
    }

    /// The analytical planner this predictor prices configurations with
    /// (shared with retraining so calibration can never drift from it).
    pub(crate) fn planner(&self) -> &Planner {
        &self.planner
    }

    /// The underlying forest.
    pub fn forest(&self) -> &RandomForest {
        &self.forest
    }

    /// Registers a previously alien query as known (after retraining has
    /// incorporated it, §4.2). Returns its new code.
    pub fn register_query(&mut self, query: &QueryProfile) -> f64 {
        if let Some(&i) = self.index.get(&query.id) {
            return self.known[i].code;
        }
        let code = self.known.len() as f64;
        self.index.insert(query.id.clone(), self.known.len());
        self.known.push(KnownQuery {
            id: query.id.clone(),
            code,
            input_gb: query.input_gb,
            workload: approximate_workload(query, &self.env),
        });
        self.sc.register(query);
        code
    }

    /// Looks up a known query's code by id.
    pub fn code_of(&self, query_id: &str) -> Option<f64> {
        self.index.get(query_id).map(|&i| self.known[i].code)
    }

    /// Predicts the completion time (seconds) of `query` under a specific
    /// configuration — Equation 1 without the search.
    ///
    /// # Errors
    ///
    /// Returns [`SmartpickError::UnknownQuery`] when the query cannot be
    /// matched.
    pub fn predict_seconds(
        &self,
        query: &QueryProfile,
        alloc: &Allocation,
    ) -> Result<f64, SmartpickError> {
        let (known, _similarity, _known_query) = self.resolve(query)?;
        let features = QueryFeatures::for_allocation(known.code, query.input_gb, alloc, &self.env);
        Ok(self.forest.predict(&features.to_array()))
    }

    /// Resolves a query to a known query: directly if known (an id→index
    /// hash lookup), via the Similarity Checker otherwise.
    fn resolve(&self, query: &QueryProfile) -> Result<(&KnownQuery, f64, bool), SmartpickError> {
        if let Some(&i) = self.index.get(&query.id) {
            return Ok((&self.known[i], 1.0, true));
        }
        let matched = self
            .sc
            .closest(query)
            .ok_or_else(|| SmartpickError::UnknownQuery(query.id.clone()))?;
        let k = self
            .index
            .get(&matched.query_id)
            .map(|&i| &self.known[i])
            .ok_or_else(|| SmartpickError::UnknownQuery(query.id.clone()))?;
        Ok((k, matched.similarity, false))
    }

    /// Rebuilds the candidate `{nVM, nSL}` grid for a constraint mode
    /// from scratch — what every `determine()` call did before the grids
    /// were precompiled; kept for [`WorkloadPredictor::determine_reference`].
    /// Enumerates through the same [`grid_coords`] the precompiled grids
    /// use, so the two paths can never search different candidate sets.
    fn candidates_rebuilt(&self, constraint: ConstraintMode) -> Vec<Vec<f64>> {
        grid_coords(self.max_vm, self.max_sl, self.min_total, constraint)
            .into_iter()
            .map(|(n_vm, n_sl)| vec![n_vm as f64, n_sl as f64])
            .collect()
    }

    /// One GP-guided probe is worth roughly this many flat tree-walks:
    /// the surrogate iteration's acquisition sweep does a posterior
    /// (RBF row against every observed probe + a triangular solve) per
    /// pooled candidate, which measures at ~10–20 tree-walks apiece.
    /// Priced at the conservative end of that band so a borderline grid
    /// never sweeps itself slower than the lazy search it replaced.
    const GP_PROBE_PRICE_WALKS: usize = 10;

    /// Prices the two Equation 2 search strategies for an
    /// `n_candidates`-point grid and reports whether the batch sweep is
    /// the cheaper spend of the prediction-latency budget.
    ///
    /// Batch sweep: one flat tree-walk per (candidate, tree) pair. Lazy
    /// GP search: up to `max_evals` surrogate iterations, each scoring
    /// an `acq_subsample`-candidate pool at
    /// [`Self::GP_PROBE_PRICE_WALKS`] walks per score.
    fn batch_sweep_is_cheaper(&self, n_candidates: usize) -> bool {
        let batch_walks = n_candidates * self.forest.n_trees();
        let pool = self
            .bo
            .acq_subsample
            .unwrap_or(n_candidates)
            .min(n_candidates);
        let gp_walks = self.bo.max_evals * pool * Self::GP_PROBE_PRICE_WALKS;
        batch_walks <= gp_walks
    }

    /// The relay policy the determination should carry.
    fn relay_for(&self, n_vm: u32, n_sl: u32) -> RelayPolicy {
        if self.relay_aware && n_vm > 0 && n_sl > 0 {
            RelayPolicy::Relay
        } else {
            RelayPolicy::None
        }
    }

    /// Turns a finished search into a [`Determination`]: builds `ET_l`
    /// with planner costs, applies the §3.3 knob, and stamps the match
    /// metadata. Shared by the vectorized and reference paths.
    fn finish(
        &self,
        result: BoResult,
        knob: f64,
        known_query: bool,
        matched_query: String,
        match_similarity: f64,
    ) -> Determination {
        // Build ET_l from the probes, with planner costs.
        let et_list: Vec<EtEntry> = result
            .probes
            .iter()
            .map(|p| {
                let n_vm = p.x[0] as u32;
                let n_sl = p.x[1] as u32;
                let alloc = Allocation::new(n_vm, n_sl).with_relay(self.relay_for(n_vm, n_sl));
                let est_seconds = -p.objective;
                EtEntry {
                    est_cost: self.planner.expected_cost(&alloc, est_seconds),
                    allocation: alloc,
                    est_seconds,
                }
            })
            .collect();

        // Best-performance choice.
        let best_vm = result.best_x[0] as u32;
        let best_sl = result.best_x[1] as u32;
        let best_alloc =
            Allocation::new(best_vm, best_sl).with_relay(self.relay_for(best_vm, best_sl));
        let t_best = -result.best_objective;
        let c_best = self.planner.expected_cost(&best_alloc, t_best);

        // Knob (§3.3): traverse ET_l for a cheaper in-tolerance entry.
        let (allocation, predicted_seconds, predicted_cost) =
            match choose_with_knob(&et_list, t_best, c_best, knob) {
                Some(i) => {
                    let e = &et_list[i];
                    (e.allocation, e.est_seconds, e.est_cost)
                }
                None => (best_alloc, t_best, c_best),
            };

        Determination {
            allocation,
            predicted_seconds,
            predicted_cost,
            et_list,
            evaluations: result.evaluations,
            known_query,
            matched_query,
            match_similarity,
        }
    }

    /// The original scalar `determine()` implementation: the candidate
    /// grid is rebuilt on every call, each BO probe allocates a feature
    /// `Vec` and walks the forest's `enum`-node trees, and the GP
    /// surrogate guides probe selection. Kept verbatim as the
    /// pre-vectorization baseline the `determine_latency` benchmark and
    /// the equivalence tests measure [`WorkloadPredictionService::determine`]
    /// against.
    ///
    /// # Errors
    ///
    /// Returns [`SmartpickError::UnknownQuery`] when the query cannot be
    /// matched.
    pub fn determine_reference(
        &self,
        request: &PredictionRequest,
    ) -> Result<Determination, SmartpickError> {
        let (known, similarity, known_query) = self.resolve(&request.query)?;
        let code = known.code;
        let matched_id = known.id.clone();

        let candidates = self.candidates_rebuilt(request.constraint);
        let mut noise_rng = StdRng::seed_from_u64(request.seed ^ NOISE_SEED_MIX);
        let bo = BayesianOptimizer::new(self.bo.clone());

        // Equation 2: maximise −(RF_t + δ).
        let result = bo.maximize(&candidates, request.seed, |x| {
            let alloc = Allocation::new(x[0] as u32, x[1] as u32);
            let features =
                QueryFeatures::for_allocation(code, request.query.input_gb, &alloc, &self.env);
            let rf_t = self.forest.predict_reference(&features.to_vec());
            let delta = sample_normal(&mut noise_rng, 0.0, self.noise_sigma);
            -(rf_t + delta)
        });

        Ok(self.finish(result, request.knob, known_query, matched_id, similarity))
    }
}

/// Enumerates the candidate `{nVM, nSL}` coordinates for one constraint
/// mode, in the canonical nested-loop order. The single source of truth
/// for the search space: the precompiled [`CandidateGrids`] and the
/// reference path's per-call rebuild both go through here.
fn grid_coords(
    max_vm: u32,
    max_sl: u32,
    min_total: u32,
    constraint: ConstraintMode,
) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for n_vm in 0..=max_vm {
        for n_sl in 0..=max_sl {
            if n_vm + n_sl < min_total.max(1) {
                continue;
            }
            let keep = match constraint {
                ConstraintMode::Hybrid => true,
                ConstraintMode::VmOnly => n_sl == 0,
                ConstraintMode::SlOnly => n_vm == 0,
                ConstraintMode::EqualSlVm => n_vm == n_sl && n_vm > 0,
            };
            if keep {
                out.push((n_vm, n_sl));
            }
        }
    }
    out
}

/// Approximates a query DAG as a uniform workload for the planner's cost
/// model: total tasks at the mean per-task VM time.
pub(crate) fn approximate_workload(query: &QueryProfile, env: &CloudEnv) -> UniformWorkload {
    let perf = env.perf();
    let mut total_secs = 0.0;
    let mut tasks = 0usize;
    for s in &query.stages {
        let per_task = s.cpu_ms_per_task / 1000.0 / perf.vm_speed_factor()
            + perf.storage_read_secs(s.input_mib_per_task + s.shuffle_mib_per_task);
        total_secs += per_task * s.tasks as f64;
        tasks += s.tasks;
    }
    UniformWorkload {
        tasks,
        task_secs_on_vm: if tasks == 0 {
            0.0
        } else {
            total_secs / tasks as f64
        },
    }
}

impl WorkloadPredictionService for WorkloadPredictor {
    /// The vectorized `determine()` with a **priced latency budget**:
    /// both Equation 2 search strategies are priced in flat-tree-walk
    /// equivalents and the cheaper one runs.
    ///
    /// * **Batch sweep** (small grids, the common case): Equation 1 is
    ///   batch-evaluated over the *entire* precompiled candidate grid in
    ///   one tree-outer pass through the flat forest, and the search
    ///   consumes the precomputed `RF_t` values — same seeded initial
    ///   design, δ observation noise, `ET_l` recording and §3.1
    ///   termination rule, but probes cost an array lookup and the
    ///   model's true grid optimum is guaranteed to be among them.
    /// * **Lazy GP search** (grids big enough that sweeping them costs
    ///   more than the surrogate loop): the paper's GP-guided probing,
    ///   but over the cached grid, with stack-allocated feature rows and
    ///   flat-tree probes.
    fn determine(&self, request: &PredictionRequest) -> Result<Determination, SmartpickError> {
        let (known, similarity, known_query) = self.resolve(&request.query)?;
        let code = known.code;
        let matched_id = known.id.clone();

        let grid = self.grids.get(request.constraint);
        let mut noise_rng = StdRng::seed_from_u64(request.seed ^ NOISE_SEED_MIX);
        let bo = BayesianOptimizer::new(self.bo.clone());

        let result = if self.batch_sweep_is_cheaper(grid.candidates.len()) {
            // Fill the two query-dependent columns of the cached feature
            // template, then batch-evaluate RF_t for every candidate.
            let mut features = grid.feature_template.clone();
            let input_bytes = QueryFeatures::input_gb_to_bytes(request.query.input_gb);
            for row in features.chunks_exact_mut(N_FEATURES) {
                row[QUERY_CODE_COL] = code;
                row[INPUT_BYTES_COL] = input_bytes;
            }
            let mut objective = vec![0.0; grid.candidates.len()];
            self.forest.predict_batch_into(&features, &mut objective);
            // Equation 2 maximises −(RF_t + δ): negate in place, add δ
            // per probe below.
            for v in &mut objective {
                *v = -*v;
            }
            bo.maximize_precomputed(&grid.candidates, &objective, request.seed, |_| {
                -sample_normal(&mut noise_rng, 0.0, self.noise_sigma)
            })
        } else {
            bo.maximize(&grid.candidates, request.seed, |x| {
                let alloc = Allocation::new(x[0] as u32, x[1] as u32);
                let features =
                    QueryFeatures::for_allocation(code, request.query.input_gb, &alloc, &self.env);
                let rf_t = self.forest.predict(&features.to_array());
                let delta = sample_normal(&mut noise_rng, 0.0, self.noise_sigma);
                -(rf_t + delta)
            })
        };

        Ok(self.finish(result, request.knob, known_query, matched_id, similarity))
    }

    /// The batched determine: all sweep-eligible requests' candidate
    /// grids are staged into **one** concatenated row-major feature
    /// matrix and priced by a single tree-outer
    /// [`RandomForest::predict_batch_into`] pass — each tree's flat
    /// arrays are walked once per *batch* instead of once per request —
    /// then every request's search consumes its own slice of the
    /// precomputed objective with its own seeded δ-noise stream.
    /// Bit-identical to N sequential [`Self::determine`] calls (batch
    /// row evaluation is row-independent; the per-request RNG streams
    /// are derived exactly as in the scalar path). Requests whose grid
    /// is too big for the sweep keep the lazy GP search, per request.
    fn determine_batch(
        &self,
        requests: &[PredictionRequest],
    ) -> Result<Vec<Determination>, SmartpickError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        // Cross-request dedup: a determination is a pure function of the
        // request (the δ-noise stream is seeded from it), so identical
        // requests inside one frame are computed once and the result
        // fanned out per index. Keyed on the canonical serialisation; a
        // request that fails to serialise simply keeps its own slot.
        let mut first_of: HashMap<String, usize> = HashMap::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(requests.len());
        let mut unique: Vec<usize> = Vec::new();
        for (i, r) in requests.iter().enumerate() {
            let key = serde_json::to_string(r).unwrap_or_else(|_| format!("__nodedup_{i}"));
            let slot = *first_of.entry(key).or_insert_with(|| {
                unique.push(i);
                unique.len() - 1
            });
            slot_of.push(slot);
        }
        if unique.len() < requests.len() {
            let uniques: Vec<PredictionRequest> =
                unique.iter().map(|&i| requests[i].clone()).collect();
            let computed = self.determine_unique_batch(&uniques)?;
            return Ok(slot_of.iter().map(|&s| computed[s].clone()).collect());
        }
        self.determine_unique_batch(requests)
    }
}

impl WorkloadPredictor {
    /// The batched determine over already-deduplicated requests — the
    /// computation half of [`WorkloadPredictionService::determine_batch`].
    fn determine_unique_batch(
        &self,
        requests: &[PredictionRequest],
    ) -> Result<Vec<Determination>, SmartpickError> {
        // Resolve every query up front so an unmatchable one fails the
        // whole batch before any search work is spent.
        let mut resolved = Vec::with_capacity(requests.len());
        for r in requests {
            let (known, similarity, known_query) = self.resolve(&r.query)?;
            resolved.push((known.code, known.id.clone(), similarity, known_query));
        }

        // Stage sweep-eligible requests into the shared feature matrix.
        let mut spans: Vec<Option<(usize, usize)>> = Vec::with_capacity(requests.len());
        let mut features: Vec<f64> = Vec::new();
        let mut rows = 0usize;
        for (r, (code, ..)) in requests.iter().zip(&resolved) {
            let grid = self.grids.get(r.constraint);
            let n = grid.candidates.len();
            if !self.batch_sweep_is_cheaper(n) {
                spans.push(None);
                continue;
            }
            spans.push(Some((rows, n)));
            let at = features.len();
            features.extend_from_slice(&grid.feature_template);
            let input_bytes = QueryFeatures::input_gb_to_bytes(r.query.input_gb);
            for row in features[at..].chunks_exact_mut(N_FEATURES) {
                row[QUERY_CODE_COL] = *code;
                row[INPUT_BYTES_COL] = input_bytes;
            }
            rows += n;
        }
        let mut objective = vec![0.0; rows];
        if rows > 0 {
            self.forest.predict_batch_into(&features, &mut objective);
            // Equation 2 maximises −(RF_t + δ): negate once for the whole
            // batch, add δ per probe below.
            for v in &mut objective {
                *v = -*v;
            }
        }

        let mut out = Vec::with_capacity(requests.len());
        for ((request, span), (code, matched_id, similarity, known_query)) in
            requests.iter().zip(&spans).zip(resolved)
        {
            let grid = self.grids.get(request.constraint);
            let mut noise_rng = StdRng::seed_from_u64(request.seed ^ NOISE_SEED_MIX);
            let bo = BayesianOptimizer::new(self.bo.clone());
            let result = match span {
                Some((offset, n)) => bo.maximize_precomputed(
                    &grid.candidates,
                    &objective[*offset..offset + n],
                    request.seed,
                    |_| -sample_normal(&mut noise_rng, 0.0, self.noise_sigma),
                ),
                None => bo.maximize(&grid.candidates, request.seed, |x| {
                    let alloc = Allocation::new(x[0] as u32, x[1] as u32);
                    let features = QueryFeatures::for_allocation(
                        code,
                        request.query.input_gb,
                        &alloc,
                        &self.env,
                    );
                    let rf_t = self.forest.predict(&features.to_array());
                    let delta = sample_normal(&mut noise_rng, 0.0, self.noise_sigma);
                    -(rf_t + delta)
                }),
            };
            out.push(self.finish(result, request.knob, known_query, matched_id, similarity));
        }
        Ok(out)
    }
}

/// Mixed into the request seed so the δ-noise stream differs from the BO's
/// own candidate shuffling.
const NOISE_SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;
