//! The History Server (§4.1, §5).
//!
//! "History Server captures and stores the metrics outlined in Table 3"
//! and serves them to other components (the paper exposes it over internal
//! DNS; here it is a thread-safe in-process store). Records serialise to
//! JSON, matching the paper's storage format.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::features::QueryFeatures;

/// One completed run's record: features, outcome and the prediction made.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Query identifier (e.g. `tpcds-q11`).
    pub query_id: String,
    /// The Table 3 features of the run.
    pub features: QueryFeatures,
    /// Actual completion time, seconds.
    pub actual_seconds: f64,
    /// Predicted completion time, seconds (NaN-free; 0 when unpredicted).
    pub predicted_seconds: f64,
    /// Total cost in dollars.
    pub cost_dollars: f64,
}

impl RunRecord {
    /// Absolute prediction error in seconds.
    pub fn abs_error(&self) -> f64 {
        (self.actual_seconds - self.predicted_seconds).abs()
    }
}

/// Thread-safe store of run records.
///
/// # Example
///
/// ```
/// use smartpick_core::history::{HistoryServer, RunRecord};
/// use smartpick_core::features::QueryFeatures;
/// use smartpick_cloudsim::{CloudEnv, Provider};
/// use smartpick_engine::Allocation;
///
/// let history = HistoryServer::new();
/// let env = CloudEnv::new(Provider::Aws);
/// history.record(RunRecord {
///     query_id: "tpcds-q11".into(),
///     features: QueryFeatures::for_allocation(0.0, 100.0, &Allocation::new(2, 2), &env),
///     actual_seconds: 80.0,
///     predicted_seconds: 78.0,
///     cost_dollars: 0.04,
/// });
/// assert_eq!(history.len(), 1);
/// assert_eq!(history.for_query("tpcds-q11").len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct HistoryServer {
    records: RwLock<Vec<RunRecord>>,
}

impl HistoryServer {
    /// Creates an empty history.
    pub fn new() -> Self {
        HistoryServer::default()
    }

    /// Rebuilds a history from previously captured
    /// [`HistoryServer::snapshot`] records — the persistence restore path.
    pub fn from_records(records: Vec<RunRecord>) -> Self {
        HistoryServer {
            records: RwLock::new(records),
        }
    }

    /// Appends a record.
    pub fn record(&self, record: RunRecord) {
        self.records.write().push(record);
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.read().len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.records.read().is_empty()
    }

    /// A snapshot of all records.
    pub fn snapshot(&self) -> Vec<RunRecord> {
        self.records.read().clone()
    }

    /// Records for one query id.
    pub fn for_query(&self, query_id: &str) -> Vec<RunRecord> {
        self.records
            .read()
            .iter()
            .filter(|r| r.query_id == query_id)
            .cloned()
            .collect()
    }

    /// The most recent `n` records (oldest first).
    pub fn recent(&self, n: usize) -> Vec<RunRecord> {
        let records = self.records.read();
        let start = records.len().saturating_sub(n);
        records[start..].to_vec()
    }

    /// Serialises the whole history to JSON (the paper's storage format).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&*self.records.read()).expect("records are serialisable")
    }

    /// Restores a history from JSON produced by [`HistoryServer::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error message on malformed input.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let records: Vec<RunRecord> = serde_json::from_str(json).map_err(|e| e.to_string())?;
        Ok(HistoryServer {
            records: RwLock::new(records),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartpick_cloudsim::{CloudEnv, Provider};
    use smartpick_engine::Allocation;

    fn record(id: &str, actual: f64, predicted: f64) -> RunRecord {
        let env = CloudEnv::new(Provider::Aws);
        RunRecord {
            query_id: id.to_owned(),
            features: QueryFeatures::for_allocation(0.0, 100.0, &Allocation::new(1, 1), &env),
            actual_seconds: actual,
            predicted_seconds: predicted,
            cost_dollars: 0.01,
        }
    }

    #[test]
    fn stores_and_filters() {
        let h = HistoryServer::new();
        h.record(record("a", 10.0, 9.0));
        h.record(record("b", 20.0, 22.0));
        h.record(record("a", 11.0, 10.5));
        assert_eq!(h.len(), 3);
        assert_eq!(h.for_query("a").len(), 2);
        assert_eq!(h.recent(2).len(), 2);
        assert_eq!(h.recent(2)[0].query_id, "b");
    }

    #[test]
    fn json_round_trip() {
        let h = HistoryServer::new();
        h.record(record("x", 30.0, 28.0));
        let json = h.to_json();
        let back = HistoryServer::from_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.snapshot()[0].query_id, "x");
        assert!(HistoryServer::from_json("not json").is_err());
    }

    #[test]
    fn abs_error() {
        assert_eq!(record("q", 10.0, 13.0).abs_error(), 3.0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let h = Arc::new(HistoryServer::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for j in 0..50 {
                        h.record(record(&format!("q{i}"), j as f64, j as f64));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.len(), 400);
    }
}
