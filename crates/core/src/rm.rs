//! The Resource Manager (RM, §4.1, §5).
//!
//! The RM "spawns and manages SL and VM instances based on optimal compute
//! resource configurations", tracks the REQUEST-ID ↔ INSTANCE-ID mapping
//! that drives relay termination, and keeps charging statistics for cost
//! monitoring. The spawn/terminate mechanics live in the engine; this
//! component owns the bookkeeping the paper assigns to the RM.

use parking_lot::RwLock;

use smartpick_cloudsim::{CloudEnv, Money};
use smartpick_engine::{simulate_query, Allocation, EngineError, QueryProfile, RunReport};

/// Aggregate statistics across every query the RM served.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RmStats {
    /// Queries executed.
    pub queries: usize,
    /// Total VM instances spawned.
    pub vms_spawned: usize,
    /// Total serverless instances spawned.
    pub sls_spawned: usize,
    /// Total dollars billed.
    pub total_cost_dollars: f64,
}

impl RmStats {
    /// Total charges as [`Money`].
    pub fn total_cost(&self) -> Money {
        Money::from_dollars(self.total_cost_dollars)
    }
}

/// The Resource Manager.
#[derive(Debug)]
pub struct ResourceManager {
    env: CloudEnv,
    stats: RwLock<RmStats>,
}

impl ResourceManager {
    /// Creates an RM on one environment.
    pub fn new(env: CloudEnv) -> Self {
        ResourceManager {
            env,
            stats: RwLock::new(RmStats::default()),
        }
    }

    /// The environment queries run in.
    pub fn env(&self) -> &CloudEnv {
        &self.env
    }

    /// Spawns the determined instances and executes `query` to completion,
    /// updating charging statistics (§5 "Cost estimation").
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`]s from the simulated run.
    pub fn execute(
        &self,
        query: &QueryProfile,
        alloc: &Allocation,
        seed: u64,
    ) -> Result<RunReport, EngineError> {
        let report = simulate_query(query, alloc, &self.env, seed)?;
        let mut stats = self.stats.write();
        stats.queries += 1;
        // Spawn counts follow the determination: every requested instance
        // is spawned, even if a fast query ends before a VM finishes
        // booting (such VMs bill nothing).
        stats.vms_spawned += alloc.n_vm as usize;
        stats.sls_spawned += alloc.n_sl as usize;
        stats.total_cost_dollars += report.total_cost().dollars();
        Ok(report)
    }

    /// Charging statistics so far.
    pub fn stats(&self) -> RmStats {
        *self.stats.read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartpick_cloudsim::Provider;
    use smartpick_engine::RelayPolicy;

    #[test]
    fn execute_updates_stats() {
        let rm = ResourceManager::new(CloudEnv::new(Provider::Aws));
        let q = QueryProfile::uniform("q", 2, 20, 1500.0, 8.0, 2.0);
        let r1 = rm
            .execute(&q, &Allocation::new(2, 3).with_relay(RelayPolicy::Relay), 1)
            .unwrap();
        let r2 = rm.execute(&q, &Allocation::vm_only(2), 2).unwrap();
        let stats = rm.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.vms_spawned, 4);
        assert_eq!(stats.sls_spawned, 3);
        let expect = r1.total_cost().dollars() + r2.total_cost().dollars();
        assert!((stats.total_cost_dollars - expect).abs() < 1e-12);
    }

    #[test]
    fn failures_propagate_without_counting() {
        let rm = ResourceManager::new(CloudEnv::new(Provider::Aws));
        let q = QueryProfile::uniform("q", 1, 5, 1000.0, 4.0, 0.0);
        assert!(rm.execute(&q, &Allocation::new(0, 0), 0).is_err());
        assert_eq!(rm.stats().queries, 0);
    }
}
