//! The Similarity Checker (§4.2, §5).
//!
//! "Smartpick maintains the known queries' identifiers and their
//! attributes, such as the number of tables, columns, subqueries, and map
//! tasks. When queries are sent, Smartpick extracts these attributes from
//! the incoming queries and computes the spatial cosine similarity to
//! search for the closest known-query identifier."

use smartpick_engine::QueryProfile;
use smartpick_sqlmeta::{cosine_similarity, extract};

/// A known query's similarity signature.
#[derive(Debug, Clone, PartialEq)]
pub struct KnownSignature {
    /// Query identifier.
    pub query_id: String,
    /// `(tables, columns, subqueries, map_tasks)`.
    pub vector: [f64; 4],
}

/// The result of a similarity lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityMatch {
    /// The closest known query's identifier.
    pub query_id: String,
    /// Cosine similarity in `[-1, 1]`.
    pub similarity: f64,
}

/// Finds the closest known query for alien requests.
#[derive(Debug, Clone, Default)]
pub struct SimilarityChecker {
    known: Vec<KnownSignature>,
}

impl SimilarityChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        SimilarityChecker::default()
    }

    /// Rebuilds a checker from previously captured
    /// [`SimilarityChecker::signatures`] — the persistence restore path.
    /// Signatures are taken verbatim (no re-extraction), so a restored
    /// checker matches queries exactly as the original did.
    pub fn from_signatures(signatures: Vec<KnownSignature>) -> Self {
        SimilarityChecker { known: signatures }
    }

    /// Registers a known query, extracting its signature from its SQL and
    /// map-task count. Re-registering an id replaces the old signature.
    pub fn register(&mut self, query: &QueryProfile) {
        let meta = extract(&query.sql);
        let vector = meta.to_similarity_vector(query.map_tasks());
        self.known.retain(|k| k.query_id != query.id);
        self.known.push(KnownSignature {
            query_id: query.id.clone(),
            vector,
        });
    }

    /// Whether `query_id` is registered.
    pub fn knows(&self, query_id: &str) -> bool {
        self.known.iter().any(|k| k.query_id == query_id)
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.known.len()
    }

    /// Whether no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.known.is_empty()
    }

    /// The registered signatures.
    pub fn signatures(&self) -> &[KnownSignature] {
        &self.known
    }

    /// Finds the closest known query to `query`, or `None` when nothing is
    /// registered.
    ///
    /// Dimensions are rescaled to comparable ranges (each divided by its
    /// maximum over the known set and the probe) before the cosine: the
    /// raw vector is dominated by the map-task count, which would make the
    /// cosine nearly degenerate across structurally different queries.
    pub fn closest(&self, query: &QueryProfile) -> Option<SimilarityMatch> {
        let meta = extract(&query.sql);
        let probe = meta.to_similarity_vector(query.map_tasks());

        let mut scale = [1e-9f64; 4];
        for d in 0..4 {
            scale[d] = scale[d].max(probe[d].abs());
            for k in &self.known {
                scale[d] = scale[d].max(k.vector[d].abs());
            }
        }
        let normalise = |v: &[f64; 4]| -> [f64; 4] {
            [
                v[0] / scale[0],
                v[1] / scale[1],
                v[2] / scale[2],
                v[3] / scale[3],
            ]
        };
        let probe = normalise(&probe);
        self.known
            .iter()
            .map(|k| SimilarityMatch {
                query_id: k.query_id.clone(),
                similarity: cosine_similarity(&probe, &normalise(&k.vector)),
            })
            .max_by(|a, b| {
                a.similarity
                    .partial_cmp(&b.similarity)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartpick_workloads::tpcds;

    fn checker_with_training_set() -> SimilarityChecker {
        let mut sc = SimilarityChecker::new();
        for q in tpcds::TRAINING_QUERIES {
            sc.register(&tpcds::query(q, 100.0).unwrap());
        }
        sc
    }

    #[test]
    fn empty_checker_matches_nothing() {
        let sc = SimilarityChecker::new();
        assert!(sc.closest(&tpcds::query(2, 100.0).unwrap()).is_none());
        assert!(sc.is_empty());
    }

    #[test]
    fn known_query_matches_itself() {
        let sc = checker_with_training_set();
        let q11 = tpcds::query(11, 100.0).unwrap();
        let m = sc.closest(&q11).unwrap();
        assert_eq!(m.query_id, "tpcds-q11");
        assert!(m.similarity > 0.999);
    }

    #[test]
    fn aliens_match_their_counterparts() {
        // §6.5.1 pairings encoded in the workload catalog.
        let sc = checker_with_training_set();
        for (alien, expect) in [(2u32, "tpcds-q74"), (4, "tpcds-q11"), (55, "tpcds-q82")] {
            let q = tpcds::query(alien, 100.0).unwrap();
            let m = sc.closest(&q).unwrap();
            assert_eq!(m.query_id, expect, "alien q{alien}");
            assert!(m.similarity > 0.95, "similarity {}", m.similarity);
        }
    }

    #[test]
    fn reregistering_replaces() {
        let mut sc = SimilarityChecker::new();
        let q = tpcds::query(11, 100.0).unwrap();
        sc.register(&q);
        sc.register(&q);
        assert_eq!(sc.len(), 1);
        assert!(sc.knows("tpcds-q11"));
    }
}
