//! The Smartpick system facade — Figure 3's full workflow.
//!
//! On each submitted query (step 0): the Job Initializer asks WP for the
//! optimal `{nVM, nSL}` (1); unknown queries go through the Similarity
//! Checker (2); WP pulls features from MFE/History (3–5) and runs RF + BO;
//! with a non-zero knob the `ET_l` list is traversed (§3.3); the
//! determination returns (6) and the Resource Manager spawns the instances
//! and runs the query (7–8); on completion MFE compares predicted vs
//! actual and fires background retraining when the error exceeds the
//! trigger (9).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use smartpick_cloudsim::CloudEnv;
use smartpick_engine::{QueryProfile, RunReport};

use crate::error::SmartpickError;
use crate::history::{HistoryServer, RunRecord};
use crate::mfe::Mfe;
use crate::properties::SmartpickProperties;
use crate::retrain::RetrainReport;
use crate::rm::ResourceManager;
use crate::training::{train_predictor, TrainOptions, TrainReport};
use crate::wp::{
    ConstraintMode, Determination, PredictionRequest, WorkloadPredictionService,
    WorkloadPredictor,
};

/// Everything one submitted query produced.
#[derive(Debug)]
pub struct QueryOutcome {
    /// WP's resource determination (including `ET_l`).
    pub determination: Determination,
    /// The execution report (completion time, itemised cost).
    pub report: RunReport,
    /// Background retraining fired by this run, if any.
    pub retrain: Option<RetrainReport>,
}

impl QueryOutcome {
    /// Absolute prediction error, seconds.
    pub fn prediction_error(&self) -> f64 {
        (self.report.seconds() - self.determination.predicted_seconds).abs()
    }
}

/// The assembled Smartpick system.
#[derive(Debug)]
pub struct Smartpick {
    props: SmartpickProperties,
    predictor: WorkloadPredictor,
    history: HistoryServer,
    mfe: Mfe,
    rm: ResourceManager,
    rng: StdRng,
}

impl Smartpick {
    /// Trains a Smartpick instance on `training_queries` with default
    /// training options (the paper's 20-configs × data-burst recipe) and
    /// the relay setting taken from `props`.
    ///
    /// # Errors
    ///
    /// Propagates training failures; [`SmartpickError::NoTrainingData`]
    /// when `training_queries` is empty.
    pub fn train(
        env: CloudEnv,
        props: SmartpickProperties,
        training_queries: &[QueryProfile],
        seed: u64,
    ) -> Result<Self, SmartpickError> {
        let opts = TrainOptions {
            relay: props.relay,
            ..TrainOptions::default()
        };
        Self::train_with_options(env, props, training_queries, &opts, seed).map(|(s, _)| s)
    }

    /// Trains with explicit options, also returning the quality report.
    ///
    /// # Errors
    ///
    /// See [`Smartpick::train`].
    pub fn train_with_options(
        env: CloudEnv,
        props: SmartpickProperties,
        training_queries: &[QueryProfile],
        options: &TrainOptions,
        seed: u64,
    ) -> Result<(Self, TrainReport), SmartpickError> {
        let (predictor, report) = train_predictor(&env, training_queries, options, seed)?;
        Ok((
            Smartpick {
                mfe: Mfe::new(env.clone(), props.clone(), seed ^ 0x11FE),
                rm: ResourceManager::new(env),
                props,
                predictor,
                history: HistoryServer::new(),
                rng: StdRng::seed_from_u64(seed ^ DRIVER_SEED_MIX),
            },
            report,
        ))
    }

    /// Submits a query through the full Figure 3 workflow with the
    /// configured knob and the unrestricted hybrid search.
    ///
    /// # Errors
    ///
    /// Propagates prediction and execution failures.
    pub fn submit(&mut self, query: &QueryProfile) -> Result<QueryOutcome, SmartpickError> {
        self.submit_with(query, self.props.knob, ConstraintMode::Hybrid)
    }

    /// Submits with an explicit knob and search constraint (the baselines
    /// of §6.3 use `VmOnly` / `SlOnly` / `EqualSlVm`).
    ///
    /// # Errors
    ///
    /// Propagates prediction and execution failures.
    pub fn submit_with(
        &mut self,
        query: &QueryProfile,
        knob: f64,
        constraint: ConstraintMode,
    ) -> Result<QueryOutcome, SmartpickError> {
        // Steps 1–6: determine the configuration.
        let seed: u64 = self.rng.gen();
        let determination = self.predictor.determine(&PredictionRequest {
            query: query.clone(),
            knob,
            constraint,
            seed,
        })?;

        // Steps 7–8: spawn and execute.
        let run_seed: u64 = self.rng.gen();
        let report = self
            .rm
            .execute(query, &determination.allocation, run_seed)?;

        // Step 9: record, monitor, maybe retrain.
        let ctx = self.mfe.next_context();
        let error = (report.seconds() - determination.predicted_seconds).abs();
        let will_trigger = error > self.props.error_difference_trigger_secs;

        // An alien query that surprised us becomes a known query with its
        // own code before its sample enters the training batch (§4.2);
        // otherwise the sample would teach the model wrong things about
        // the similarity-matched query. A well-predicted alien's sample
        // stays under the matched code — it behaved like that query.
        let code = if will_trigger && !determination.known_query {
            self.predictor.register_query(query)
        } else {
            self.predictor
                .code_of(&determination.matched_query)
                .unwrap_or(-1.0)
        };
        let features =
            self.mfe
                .features_for(code, query.input_gb, &determination.allocation, &ctx);
        let record = RunRecord {
            query_id: query.id.clone(),
            features,
            actual_seconds: report.seconds(),
            predicted_seconds: determination.predicted_seconds,
            cost_dollars: report.total_cost().dollars(),
        };
        let trigger = self.mfe.after_run(&self.history, record);

        let retrain = match trigger {
            Some(trigger) => {
                let retrain_seed: u64 = self.rng.gen();
                Some(
                    self.mfe
                        .monitor_mut()
                        .retrain(&mut self.predictor, trigger, retrain_seed)?,
                )
            }
            None => None,
        };

        Ok(QueryOutcome {
            determination,
            report,
            retrain,
        })
    }

    /// The trained predictor (read access).
    pub fn predictor(&self) -> &WorkloadPredictor {
        &self.predictor
    }

    /// The history server.
    pub fn history(&self) -> &HistoryServer {
        &self.history
    }

    /// The resource manager (charging statistics).
    pub fn resource_manager(&self) -> &ResourceManager {
        &self.rm
    }

    /// The configured properties.
    pub fn properties(&self) -> &SmartpickProperties {
        &self.props
    }

    /// Background retraining tasks fired so far.
    pub fn retrain_count(&self) -> usize {
        self.mfe.monitor().retrain_count()
    }
}

/// Mixed into the training seed so the driver's per-submission RNG stream
/// differs from the trainer's.
const DRIVER_SEED_MIX: u64 = 0xD21F;

#[cfg(test)]
mod tests {
    use super::*;
    use smartpick_cloudsim::Provider;
    use smartpick_ml::forest::ForestParams;
    use smartpick_workloads::tpcds;

    fn quick_opts() -> TrainOptions {
        TrainOptions {
            configs_per_query: 6,
            burst_factor: 3,
            forest: ForestParams {
                n_trees: 20,
                ..ForestParams::default()
            },
            max_vm: 5,
            max_sl: 5,
            ..TrainOptions::default()
        }
    }

    fn system() -> Smartpick {
        let env = CloudEnv::new(Provider::Aws);
        let queries: Vec<_> = [82u32, 68]
            .iter()
            .map(|&q| tpcds::query(q, 100.0).unwrap())
            .collect();
        Smartpick::train_with_options(
            env,
            SmartpickProperties::default(),
            &queries,
            &quick_opts(),
            5,
        )
        .unwrap()
        .0
    }

    #[test]
    fn submit_known_query_end_to_end() {
        let mut sp = system();
        let q = tpcds::query(82, 100.0).unwrap();
        let outcome = sp.submit(&q).unwrap();
        assert!(outcome.determination.known_query);
        assert!(outcome.report.seconds() > 0.0);
        assert!(outcome.report.total_cost().dollars() > 0.0);
        assert_eq!(sp.history().len(), 1);
        assert_eq!(sp.resource_manager().stats().queries, 1);
    }

    #[test]
    fn alien_query_is_matched_and_possibly_retrained() {
        let mut sp = system();
        // q62 is the alien counterpart of q68.
        let q = tpcds::query(62, 100.0).unwrap();
        let outcome = sp.submit(&q).unwrap();
        assert!(!outcome.determination.known_query);
        assert_eq!(outcome.determination.matched_query, "tpcds-q68");
    }

    #[test]
    fn prediction_accuracy_is_usable() {
        let mut sp = system();
        let q = tpcds::query(68, 100.0).unwrap();
        let outcome = sp.submit(&q).unwrap();
        let rel = outcome.prediction_error() / outcome.report.seconds();
        assert!(rel < 0.5, "relative error {rel}");
    }

    #[test]
    fn repeated_submissions_accumulate_history() {
        let mut sp = system();
        let q = tpcds::query(82, 100.0).unwrap();
        for _ in 0..3 {
            sp.submit(&q).unwrap();
        }
        assert_eq!(sp.history().len(), 3);
        assert_eq!(sp.history().for_query("tpcds-q82").len(), 3);
    }
}
