//! The Smartpick system facade — Figure 3's full workflow.
//!
//! On each submitted query (step 0): the Job Initializer asks WP for the
//! optimal `{nVM, nSL}` (1); unknown queries go through the Similarity
//! Checker (2); WP pulls features from MFE/History (3–5) and runs RF + BO;
//! with a non-zero knob the `ET_l` list is traversed (§3.3); the
//! determination returns (6) and the Resource Manager spawns the instances
//! and runs the query (7–8); on completion MFE compares predicted vs
//! actual and fires background retraining when the error exceeds the
//! trigger (9).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use smartpick_cloudsim::CloudEnv;
use smartpick_engine::{QueryProfile, RunReport};

use crate::error::SmartpickError;
use crate::history::{HistoryServer, RunRecord};
use crate::mfe::Mfe;
use crate::persist;
use crate::properties::SmartpickProperties;
use crate::retrain::RetrainReport;
use crate::rm::ResourceManager;
use crate::training::{train_predictor, TrainOptions, TrainReport};
use crate::wp::{
    ConstraintMode, Determination, PredictionRequest, WorkloadPredictionService, WorkloadPredictor,
};

/// Everything one submitted query produced.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct QueryOutcome {
    /// WP's resource determination (including `ET_l`).
    pub determination: Determination,
    /// The execution report (completion time, itemised cost).
    pub report: RunReport,
    /// Background retraining fired by this run, if any.
    pub retrain: Option<RetrainReport>,
}

impl QueryOutcome {
    /// Absolute prediction error, seconds.
    pub fn prediction_error(&self) -> f64 {
        (self.report.seconds() - self.determination.predicted_seconds).abs()
    }

    /// Prediction error relative to the actual runtime.
    ///
    /// Guards the degenerate zero-runtime run (a query whose simulated
    /// completion rounds to 0 s): dividing by it would return `inf` (or
    /// `NaN` for a perfect 0 s prediction), so the absolute error is
    /// returned instead — never `inf`/`NaN`.
    pub fn relative_prediction_error(&self) -> f64 {
        let actual = self.report.seconds();
        if actual == 0.0 {
            self.prediction_error()
        } else {
            self.prediction_error() / actual
        }
    }
}

/// The assembled Smartpick system.
///
/// The trained predictor (the hot read path) and the Resource Manager are
/// held behind [`Arc`]s: [`Smartpick::snapshot`] hands out an immutable,
/// lock-free view that concurrent readers can run predictions against
/// while this driver keeps training, and
/// [`Smartpick::shared_resource_manager`] lets executions proceed without
/// holding whatever lock guards the driver. Training mutations go through
/// [`Arc::make_mut`], i.e. copy-on-write: a retrain never perturbs
/// snapshots already handed out (cheap, since the forest shares its trees
/// by `Arc` too).
#[derive(Debug)]
pub struct Smartpick {
    props: SmartpickProperties,
    predictor: Arc<WorkloadPredictor>,
    history: HistoryServer,
    mfe: Mfe,
    rm: Arc<ResourceManager>,
    rng: StdRng,
}

impl Smartpick {
    /// Trains a Smartpick instance on `training_queries` with default
    /// training options (the paper's 20-configs × data-burst recipe) and
    /// the relay setting taken from `props`.
    ///
    /// # Errors
    ///
    /// Propagates training failures; [`SmartpickError::NoTrainingData`]
    /// when `training_queries` is empty.
    pub fn train(
        env: CloudEnv,
        props: SmartpickProperties,
        training_queries: &[QueryProfile],
        seed: u64,
    ) -> Result<Self, SmartpickError> {
        let opts = TrainOptions {
            relay: props.relay,
            ..TrainOptions::default()
        };
        Self::train_with_options(env, props, training_queries, &opts, seed).map(|(s, _)| s)
    }

    /// Trains with explicit options, also returning the quality report.
    ///
    /// # Errors
    ///
    /// See [`Smartpick::train`].
    pub fn train_with_options(
        env: CloudEnv,
        props: SmartpickProperties,
        training_queries: &[QueryProfile],
        options: &TrainOptions,
        seed: u64,
    ) -> Result<(Self, TrainReport), SmartpickError> {
        let (predictor, report) = train_predictor(&env, training_queries, options, seed)?;
        Ok((
            Smartpick {
                mfe: Mfe::new(env.clone(), props.clone(), seed ^ MFE_SEED_MIX),
                rm: Arc::new(ResourceManager::new(env)),
                props,
                predictor: Arc::new(predictor),
                history: HistoryServer::new(),
                rng: StdRng::seed_from_u64(seed ^ DRIVER_SEED_MIX),
            },
            report,
        ))
    }

    /// Creates an independent driver that starts from this one's trained
    /// model but owns fresh monitoring, history, billing and RNG state.
    ///
    /// The model itself is shared copy-on-write (an `Arc` bump, no deep
    /// clone); the two drivers diverge from the first retrain onward. This
    /// is the cheap way to bootstrap many tenants from one kick-start
    /// training run.
    pub fn fork(&self, seed: u64) -> Smartpick {
        let env = self.predictor.env().clone();
        Smartpick {
            mfe: Mfe::new(env.clone(), self.props.clone(), seed ^ MFE_SEED_MIX),
            rm: Arc::new(ResourceManager::new(env)),
            props: self.props.clone(),
            predictor: Arc::clone(&self.predictor),
            history: HistoryServer::new(),
            rng: StdRng::seed_from_u64(seed ^ DRIVER_SEED_MIX),
        }
    }

    /// Submits a query through the full Figure 3 workflow with the
    /// configured knob and the unrestricted hybrid search.
    ///
    /// # Errors
    ///
    /// Propagates prediction and execution failures.
    pub fn submit(&mut self, query: &QueryProfile) -> Result<QueryOutcome, SmartpickError> {
        self.submit_with(query, self.props.knob, ConstraintMode::Hybrid)
    }

    /// Submits with an explicit knob and search constraint (the baselines
    /// of §6.3 use `VmOnly` / `SlOnly` / `EqualSlVm`).
    ///
    /// # Errors
    ///
    /// Propagates prediction and execution failures.
    pub fn submit_with(
        &mut self,
        query: &QueryProfile,
        knob: f64,
        constraint: ConstraintMode,
    ) -> Result<QueryOutcome, SmartpickError> {
        // Steps 1–6: determine the configuration.
        let seed: u64 = self.rng.gen();
        let determination = self.predictor.determine(&PredictionRequest {
            query: query.clone(),
            knob,
            constraint,
            seed,
        })?;

        // Steps 7–8: spawn and execute.
        let run_seed: u64 = self.rng.gen();
        let report = self
            .rm
            .execute(query, &determination.allocation, run_seed)?;

        // Step 9: record, monitor, maybe retrain.
        let retrain = self.apply_report(query, &determination, &report)?;

        Ok(QueryOutcome {
            determination,
            report,
            retrain,
        })
    }

    /// Applies one completed run to the training state — Figure 3's step 9
    /// (record, monitor, maybe retrain) decoupled from prediction and
    /// execution.
    ///
    /// This is the *write half* of the split read/write API: a service
    /// front-end predicts against [`Smartpick::snapshot`] and executes via
    /// [`Smartpick::shared_resource_manager`] without touching the driver,
    /// then feeds the `(determination, report)` pair back through here
    /// (possibly batched, from a background worker). Retraining mutates
    /// the predictor copy-on-write, so snapshots taken earlier are
    /// unaffected; republish a fresh snapshot afterwards to pick up the
    /// new model.
    ///
    /// # Errors
    ///
    /// Propagates retraining failures.
    pub fn apply_report(
        &mut self,
        query: &QueryProfile,
        determination: &Determination,
        report: &RunReport,
    ) -> Result<Option<RetrainReport>, SmartpickError> {
        let ctx = self.mfe.next_context();
        let error = (report.seconds() - determination.predicted_seconds).abs();
        let will_trigger = error > self.props.error_difference_trigger_secs;

        // An alien query that surprised us becomes a known query with its
        // own code before its sample enters the training batch (§4.2);
        // otherwise the sample would teach the model wrong things about
        // the similarity-matched query. A well-predicted alien's sample
        // stays under the matched code — it behaved like that query.
        let code = if will_trigger && !determination.known_query {
            Arc::make_mut(&mut self.predictor).register_query(query)
        } else {
            self.predictor
                .code_of(&determination.matched_query)
                .unwrap_or(-1.0)
        };
        let features = self
            .mfe
            .features_for(code, query.input_gb, &determination.allocation, &ctx);
        let record = RunRecord {
            query_id: query.id.clone(),
            features,
            actual_seconds: report.seconds(),
            predicted_seconds: determination.predicted_seconds,
            cost_dollars: report.total_cost().dollars(),
        };
        let trigger = self.mfe.after_run(&self.history, record);

        match trigger {
            Some(trigger) => {
                let retrain_seed: u64 = self.rng.gen();
                Ok(Some(self.mfe.monitor_mut().retrain(
                    Arc::make_mut(&mut self.predictor),
                    trigger,
                    retrain_seed,
                )?))
            }
            None => Ok(None),
        }
    }

    /// Determines every request in one batched read-path call against
    /// the current model (no execution, no training feedback): one
    /// tree-outer forest pass prices all sweep-eligible requests, with
    /// results identical to issuing each request through
    /// [`WorkloadPredictionService::determine`] individually. This is
    /// the in-process form of the wire front-end's batched endpoint.
    ///
    /// # Errors
    ///
    /// Fails the whole batch on the first unmatchable query.
    pub fn determine_batch(
        &self,
        requests: &[PredictionRequest],
    ) -> Result<Vec<Determination>, SmartpickError> {
        self.predictor.determine_batch(requests)
    }

    /// The trained predictor (read access).
    pub fn predictor(&self) -> &WorkloadPredictor {
        &self.predictor
    }

    /// An immutable snapshot of the trained predictor.
    ///
    /// The snapshot is an `Arc` bump — no model copy — and stays valid
    /// (predicting from the model as of now) across later retrains, which
    /// replace the driver's predictor copy-on-write instead of mutating
    /// it in place. This is the lock-free read path a concurrent service
    /// front-end serves `predict`/`determine` from.
    pub fn snapshot(&self) -> Arc<WorkloadPredictor> {
        Arc::clone(&self.predictor)
    }

    /// A shared handle to the Resource Manager, so executions (steps 7–8)
    /// can run without exclusive access to the driver.
    pub fn shared_resource_manager(&self) -> Arc<ResourceManager> {
        Arc::clone(&self.rm)
    }

    /// The history server.
    pub fn history(&self) -> &HistoryServer {
        &self.history
    }

    /// The resource manager (charging statistics).
    pub fn resource_manager(&self) -> &ResourceManager {
        &self.rm
    }

    /// The configured properties.
    pub fn properties(&self) -> &SmartpickProperties {
        &self.props
    }

    /// Background retraining tasks fired so far.
    pub fn retrain_count(&self) -> usize {
        self.mfe.monitor().retrain_count()
    }

    /// Captures a complete checkpoint of this driver as plain data — the
    /// export half of the persistence surface (see [`crate::persist`]).
    ///
    /// The checkpoint covers the trained predictor, the MFE monitor and
    /// its simulated clock stream, the history records and the driver's
    /// own RNG state, so a [`Smartpick::from_state`] restore continues
    /// *exactly* where this driver stood: the same reports applied in the
    /// same order produce bit-identical models on both sides.
    pub fn export_state(&self) -> persist::DriverState {
        persist::DriverState {
            props: self.props.clone(),
            predictor: persist::export_predictor(&self.predictor),
            history: self.history.snapshot(),
            mfe: persist::export_mfe(&self.mfe),
            rng_state: self.rng.state(),
        }
    }

    /// Rebuilds a driver from an [`Smartpick::export_state`] checkpoint —
    /// the restore half of the persistence surface.
    ///
    /// Exactness caveat: only environments built via `CloudEnv::new` /
    /// `CloudEnv::with_family` round-trip (see [`crate::persist`]).
    ///
    /// # Errors
    ///
    /// Returns [`SmartpickError::InvalidState`] (or a forwarded model
    /// error) when the checkpoint fails validation.
    pub fn from_state(state: &persist::DriverState) -> Result<Self, SmartpickError> {
        let predictor = persist::restore_predictor(&state.predictor)?;
        let env = predictor.env().clone();
        let mfe = persist::restore_mfe(env.clone(), state.props.clone(), &state.mfe)?;
        Ok(Smartpick {
            mfe,
            rm: Arc::new(ResourceManager::new(env)),
            props: state.props.clone(),
            predictor: Arc::new(predictor),
            history: HistoryServer::from_records(state.history.clone()),
            rng: StdRng::from_state(state.rng_state),
        })
    }
}

/// Mixed into the training seed so the driver's per-submission RNG stream
/// differs from the trainer's.
const DRIVER_SEED_MIX: u64 = 0xD21F;

/// Mixed into the training seed for the MFE's simulated clock/contention
/// stream (shared by training and forking so both derive it identically).
const MFE_SEED_MIX: u64 = 0x11FE;

#[cfg(test)]
mod tests {
    use super::*;
    use smartpick_cloudsim::Provider;
    use smartpick_ml::forest::ForestParams;
    use smartpick_workloads::tpcds;

    fn quick_opts() -> TrainOptions {
        TrainOptions {
            configs_per_query: 6,
            burst_factor: 3,
            forest: ForestParams {
                n_trees: 20,
                ..ForestParams::default()
            },
            max_vm: 5,
            max_sl: 5,
            ..TrainOptions::default()
        }
    }

    fn system() -> Smartpick {
        let env = CloudEnv::new(Provider::Aws);
        let queries: Vec<_> = [82u32, 68]
            .iter()
            .map(|&q| tpcds::query(q, 100.0).unwrap())
            .collect();
        Smartpick::train_with_options(
            env,
            SmartpickProperties::default(),
            &queries,
            &quick_opts(),
            5,
        )
        .unwrap()
        .0
    }

    #[test]
    fn submit_known_query_end_to_end() {
        let mut sp = system();
        let q = tpcds::query(82, 100.0).unwrap();
        let outcome = sp.submit(&q).unwrap();
        assert!(outcome.determination.known_query);
        assert!(outcome.report.seconds() > 0.0);
        assert!(outcome.report.total_cost().dollars() > 0.0);
        assert_eq!(sp.history().len(), 1);
        assert_eq!(sp.resource_manager().stats().queries, 1);
    }

    #[test]
    fn alien_query_is_matched_and_possibly_retrained() {
        let mut sp = system();
        // q62 is the alien counterpart of q68.
        let q = tpcds::query(62, 100.0).unwrap();
        let outcome = sp.submit(&q).unwrap();
        assert!(!outcome.determination.known_query);
        assert_eq!(outcome.determination.matched_query, "tpcds-q68");
    }

    #[test]
    fn prediction_accuracy_is_usable() {
        let mut sp = system();
        let q = tpcds::query(68, 100.0).unwrap();
        let outcome = sp.submit(&q).unwrap();
        let rel = outcome.prediction_error() / outcome.report.seconds();
        assert!(rel < 0.5, "relative error {rel}");
    }

    #[test]
    fn relative_error_guards_zero_runtime() {
        let mut sp = system();
        let q = tpcds::query(82, 100.0).unwrap();
        let mut outcome = sp.submit(&q).unwrap();
        assert!(outcome.relative_prediction_error().is_finite());
        // Force the degenerate zero-second run: the relative error must
        // fall back to the absolute error instead of inf/NaN.
        outcome.report.completion = smartpick_cloudsim::SimDuration::ZERO;
        let rel = outcome.relative_prediction_error();
        assert!(rel.is_finite());
        assert_eq!(rel, outcome.prediction_error());
    }

    #[test]
    fn snapshot_survives_retrain_unchanged() {
        let mut sp = system();
        let snap = sp.snapshot();
        let q = tpcds::query(82, 100.0).unwrap();
        let probe = PredictionRequest::new(q.clone(), 99);
        let before = snap.determine(&probe).unwrap().predicted_seconds;

        // Feed a wildly mispredicted run through the write path so a
        // retrain fires and the driver's predictor is republished.
        let outcome = sp.submit(&q).unwrap();
        let mut report = outcome.report.clone();
        report.completion = smartpick_cloudsim::SimDuration::from_secs_f64(
            outcome.determination.predicted_seconds + 500.0,
        );
        let retrain = sp
            .apply_report(&q, &outcome.determination, &report)
            .unwrap();
        assert!(retrain.is_some(), "big error fires a retrain");

        // The old snapshot is bit-for-bit stable; a fresh one reflects
        // the new model.
        assert_eq!(snap.determine(&probe).unwrap().predicted_seconds, before);
        let after = sp.snapshot().determine(&probe).unwrap().predicted_seconds;
        assert_ne!(after, before, "retrain must move the live model");
    }

    #[test]
    fn fork_shares_model_but_not_state() {
        let mut sp = system();
        let q = tpcds::query(82, 100.0).unwrap();
        sp.submit(&q).unwrap();
        let mut forked = sp.fork(1234);
        // Forks share the trained model (same Arc until a retrain)...
        assert!(Arc::ptr_eq(&sp.snapshot(), &forked.snapshot()));
        // ...but not history or billing.
        assert_eq!(forked.history().len(), 0);
        assert_eq!(forked.resource_manager().stats().queries, 0);
        forked.submit(&q).unwrap();
        assert_eq!(forked.history().len(), 1);
        assert_eq!(sp.history().len(), 1);
    }

    #[test]
    fn export_restore_twin_stays_bit_identical() {
        let mut sp = system();
        let q = tpcds::query(82, 100.0).unwrap();
        sp.submit(&q).unwrap();

        // Checkpoint mid-stream, restore a twin, and drive both through
        // the same workload: every stochastic draw must line up, so
        // outcomes stay bit-identical indefinitely.
        let state = sp.export_state();
        let mut twin = Smartpick::from_state(&state).unwrap();
        assert_eq!(twin.history().len(), sp.history().len());

        for round in 0..3 {
            let a = sp.submit(&q).unwrap();
            let b = twin.submit(&q).unwrap();
            assert_eq!(
                a.determination.predicted_seconds.to_bits(),
                b.determination.predicted_seconds.to_bits(),
                "round {round}: predictions diverged"
            );
            assert_eq!(
                a.report.seconds().to_bits(),
                b.report.seconds().to_bits(),
                "round {round}: executions diverged"
            );
        }

        // Force a retrain on both via the same mispredicted report; the
        // retrained models must also match exactly.
        let outcome = sp.submit(&q).unwrap();
        let twin_outcome = twin.submit(&q).unwrap();
        let mut report = outcome.report.clone();
        report.completion = smartpick_cloudsim::SimDuration::from_secs_f64(
            outcome.determination.predicted_seconds + 500.0,
        );
        let mut twin_report = twin_outcome.report.clone();
        twin_report.completion = report.completion;
        let r1 = sp
            .apply_report(&q, &outcome.determination, &report)
            .unwrap();
        let r2 = twin
            .apply_report(&q, &twin_outcome.determination, &twin_report)
            .unwrap();
        assert!(r1.is_some() && r2.is_some(), "both twins retrain");
        assert_eq!(sp.retrain_count(), twin.retrain_count());

        let probe = PredictionRequest::new(q, 424_242);
        assert_eq!(
            sp.predictor()
                .determine(&probe)
                .unwrap()
                .predicted_seconds
                .to_bits(),
            twin.predictor()
                .determine(&probe)
                .unwrap()
                .predicted_seconds
                .to_bits()
        );
    }

    #[test]
    fn repeated_submissions_accumulate_history() {
        let mut sp = system();
        let q = tpcds::query(82, 100.0).unwrap();
        for _ in 0..3 {
            sp.submit(&q).unwrap();
        }
        assert_eq!(sp.history().len(), 3);
        assert_eq!(sp.history().for_query("tpcds-q82").len(), 3);
    }
}
