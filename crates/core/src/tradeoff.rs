//! The cost–performance knob ε (§3.3, Equation 4).
//!
//! With the knob set above zero, Smartpick traverses the estimated-times
//! list `ET_l` accumulated during the Bayesian search and picks the entry
//! that maximises estimated time subject to
//!
//! ```text
//! nVM·t_vm·C_vm + nSL·t_sl·C_sl ≤ C_best      (cost no worse than best)
//! T_est ≤ T_best × (1 + ε)                    (bounded extra latency)
//! ```
//!
//! i.e. tolerate up to `ε` extra latency in exchange for the cheapest
//! configuration the search saw.

use serde::{Deserialize, Serialize};
use smartpick_cloudsim::Money;
use smartpick_engine::Allocation;

/// One entry of the estimated-times list `ET_l`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EtEntry {
    /// The candidate configuration.
    pub allocation: Allocation,
    /// Estimated completion time, seconds.
    pub est_seconds: f64,
    /// Estimated cost (Equation 4's left-hand side plus storage terms).
    pub est_cost: Money,
}

/// Applies Equation 4: returns the index of the `ET_l` entry to use for
/// the given knob, or `None` when no entry satisfies both constraints
/// (the caller then keeps the best-performance configuration).
///
/// Among the feasible entries (within the latency tolerance and no more
/// expensive than the best-performance configuration), the *cheapest* one
/// wins — the paper phrases the objective as maximising `T_est` but states
/// the intent as "draws minimum compute cost", and picking minimum cost
/// makes the Figure 8 behaviour (cost falls as ε rises) a monotonicity
/// guarantee, since a larger ε only enlarges the feasible set. Ties on
/// cost break toward the *faster* entry, then the lower index.
pub fn choose_with_knob(
    entries: &[EtEntry],
    t_best: f64,
    c_best: Money,
    epsilon: f64,
) -> Option<usize> {
    if epsilon <= 0.0 {
        return None;
    }
    let latency_cap = t_best * (1.0 + epsilon);
    let mut best: Option<usize> = None;
    for (i, e) in entries.iter().enumerate() {
        if e.est_seconds > latency_cap || e.est_cost > c_best {
            continue;
        }
        let better = match best {
            None => true,
            Some(j) => {
                let cur = &entries[j];
                e.est_cost < cur.est_cost
                    || (e.est_cost == cur.est_cost && e.est_seconds < cur.est_seconds)
            }
        };
        if better {
            best = Some(i);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n_vm: u32, n_sl: u32, secs: f64, cost: f64) -> EtEntry {
        EtEntry {
            allocation: Allocation::new(n_vm, n_sl),
            est_seconds: secs,
            est_cost: Money::from_dollars(cost),
        }
    }

    #[test]
    fn zero_knob_keeps_best() {
        let entries = vec![entry(5, 5, 100.0, 0.05), entry(2, 2, 140.0, 0.02)];
        assert_eq!(
            choose_with_knob(&entries, 100.0, Money::from_dollars(0.05), 0.0),
            None
        );
    }

    #[test]
    fn knob_trades_latency_for_cost() {
        let entries = vec![
            entry(5, 5, 100.0, 0.05),
            entry(3, 3, 118.0, 0.032),
            entry(2, 2, 145.0, 0.022),
        ];
        // ε = 0.2 → cap 120 s: the 118 s / 3.2¢ entry wins.
        let i = choose_with_knob(&entries, 100.0, Money::from_dollars(0.05), 0.2).unwrap();
        assert_eq!(entries[i].allocation.n_vm, 3);
        // ε = 0.5 → cap 150 s: the 145 s / 2.2¢ entry wins (max T_est).
        let i = choose_with_knob(&entries, 100.0, Money::from_dollars(0.05), 0.5).unwrap();
        assert_eq!(entries[i].allocation.n_vm, 2);
    }

    #[test]
    fn cost_constraint_excludes_expensive_entries() {
        let entries = vec![
            entry(5, 5, 100.0, 0.05),
            entry(1, 9, 110.0, 0.09), // within latency but too expensive
        ];
        let choice = choose_with_knob(&entries, 100.0, Money::from_dollars(0.05), 0.2);
        // Only the best itself qualifies; picking it is allowed.
        assert_eq!(choice, Some(0));
    }

    #[test]
    fn no_feasible_entry_returns_none() {
        let entries = vec![entry(1, 9, 200.0, 0.09)];
        assert_eq!(
            choose_with_knob(&entries, 100.0, Money::from_dollars(0.05), 0.2),
            None
        );
    }

    #[test]
    fn ties_break_to_cheaper() {
        let entries = vec![entry(4, 4, 110.0, 0.04), entry(3, 3, 110.0, 0.03)];
        let i = choose_with_knob(&entries, 100.0, Money::from_dollars(0.05), 0.2).unwrap();
        assert_eq!(entries[i].allocation.n_vm, 3);
    }
}
