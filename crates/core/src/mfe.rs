//! Monitor & Feature Extraction (MFE, §4.1).
//!
//! The MFE "monitors job execution, and maintains a trained RF model and
//! query features": it assembles the context half of a Table 3 feature row
//! at submission time (epoch, waiting apps, free memory) and, on job
//! completion, compares predicted against actual time and drives the
//! retraining monitor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use smartpick_cloudsim::CloudEnv;
use smartpick_engine::Allocation;

use crate::features::QueryFeatures;
use crate::history::{HistoryServer, RunRecord};
use crate::properties::SmartpickProperties;
use crate::retrain::{RetrainMonitor, RetrainTrigger};

/// The submission-time context the MFE attaches to feature rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubmissionContext {
    /// Seconds since epoch at submission.
    pub epoch: f64,
    /// Applications currently waiting.
    pub waiting_apps: u32,
    /// Fraction of worker memory still available.
    pub available_frac: f64,
}

/// Monitor & Feature Extraction component.
#[derive(Debug)]
pub struct Mfe {
    env: CloudEnv,
    monitor: RetrainMonitor,
    clock: StdRng,
    epoch: f64,
}

impl Mfe {
    /// Creates an MFE with the given properties.
    pub fn new(env: CloudEnv, props: SmartpickProperties, seed: u64) -> Self {
        Mfe {
            env,
            monitor: RetrainMonitor::new(props),
            clock: StdRng::seed_from_u64(seed),
            epoch: 0.0,
        }
    }

    /// Samples the next submission context. The simulated wall clock
    /// advances monotonically; contention varies run to run.
    pub fn next_context(&mut self) -> SubmissionContext {
        self.epoch += self.clock.gen_range(30.0..600.0);
        SubmissionContext {
            epoch: self.epoch,
            waiting_apps: self.clock.gen_range(0..4),
            available_frac: self.clock.gen_range(0.6..1.0),
        }
    }

    /// Builds the full Table 3 feature row for a run.
    pub fn features_for(
        &self,
        query_code: f64,
        input_gb: f64,
        alloc: &Allocation,
        ctx: &SubmissionContext,
    ) -> QueryFeatures {
        QueryFeatures::for_allocation(query_code, input_gb, alloc, &self.env)
            .with_start_epoch(ctx.epoch)
            .with_contention(ctx.waiting_apps, ctx.available_frac)
    }

    /// Processes a completed run: records it in history and reports whether
    /// retraining should fire (§4.2's "independent monitor thread").
    pub fn after_run(
        &mut self,
        history: &HistoryServer,
        record: RunRecord,
    ) -> Option<RetrainTrigger> {
        let trigger = self.monitor.observe(
            &record.features,
            record.predicted_seconds,
            record.actual_seconds,
        );
        history.record(record);
        trigger
    }

    /// Rebuilds an MFE from checkpointed state — the persistence restore
    /// path. `clock_state` is [`Mfe::clock_state`] output and `epoch` is
    /// [`Mfe::sim_epoch`], so the restored MFE's context stream continues
    /// exactly where the checkpointed one stopped.
    pub fn restore(
        env: CloudEnv,
        monitor: RetrainMonitor,
        clock_state: [u64; 4],
        epoch: f64,
    ) -> Self {
        Mfe {
            env,
            monitor,
            clock: StdRng::from_state(clock_state),
            epoch,
        }
    }

    /// The raw state of the simulated clock/contention RNG stream.
    pub fn clock_state(&self) -> [u64; 4] {
        self.clock.state()
    }

    /// The current simulated epoch (seconds advanced so far).
    pub fn sim_epoch(&self) -> f64 {
        self.epoch
    }

    /// The retraining monitor (for executing fired tasks).
    pub fn monitor_mut(&mut self) -> &mut RetrainMonitor {
        &mut self.monitor
    }

    /// The retraining monitor.
    pub fn monitor(&self) -> &RetrainMonitor {
        &self.monitor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartpick_cloudsim::Provider;

    fn mfe() -> Mfe {
        Mfe::new(
            CloudEnv::new(Provider::Aws),
            SmartpickProperties::default(),
            3,
        )
    }

    #[test]
    fn contexts_advance_monotonically() {
        let mut m = mfe();
        let a = m.next_context();
        let b = m.next_context();
        assert!(b.epoch > a.epoch);
        assert!((0.6..1.0).contains(&a.available_frac));
    }

    #[test]
    fn features_carry_context() {
        let mut m = mfe();
        let ctx = m.next_context();
        let f = m.features_for(1.0, 100.0, &Allocation::new(2, 3), &ctx);
        assert_eq!(f.start_epoch, ctx.epoch);
        assert_eq!(f.num_waiting_apps, ctx.waiting_apps as f64);
        assert_eq!(f.n_vm, 2);
        assert_eq!(f.n_sl, 3);
    }

    #[test]
    fn after_run_records_and_triggers() {
        let mut m = Mfe::new(
            CloudEnv::new(Provider::Aws),
            SmartpickProperties {
                error_difference_trigger_secs: 5.0,
                ..SmartpickProperties::default()
            },
            4,
        );
        let history = HistoryServer::new();
        let ctx = m.next_context();
        let f = m.features_for(0.0, 100.0, &Allocation::new(1, 1), &ctx);
        let trigger = m.after_run(
            &history,
            RunRecord {
                query_id: "q".into(),
                features: f,
                actual_seconds: 100.0,
                predicted_seconds: 50.0,
                cost_dollars: 0.02,
            },
        );
        assert_eq!(trigger, Some(RetrainTrigger::ErrorDifference));
        assert_eq!(history.len(), 1);
    }
}
