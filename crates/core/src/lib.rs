//! # smartpick-core
//!
//! The primary contribution of the Smartpick paper (Middleware '23),
//! reproduced in Rust: a workload-prediction system that determines, per
//! data-analytics query, the optimal mix of **serverless (SL) and VM**
//! compute — `{nVM, nSL}` — to meet cost–performance goals.
//!
//! Architecture (the paper's Figure 3), one module per component:
//!
//! * [`features`] — the Table 3 feature schema the predictor consumes.
//! * [`history`] — the **History Server** storing per-run metrics as JSON.
//! * [`mfe`] — **Monitor & Feature Extraction**: assembles prediction
//!   inputs from history and watches prediction error.
//! * [`similarity`] — the **Similarity Checker** for alien queries
//!   (spatial cosine similarity over (tables, columns, subqueries,
//!   map-tasks), §4.2).
//! * [`wp`] — **Workload Prediction**: the Random-Forest regressor coupled
//!   with a Bayesian optimizer (PI acquisition, 1%-for-10-probes
//!   termination) searching the `{nVM, nSL}` space (§3.1–3.2).
//! * [`tradeoff`] — the cost–performance **knob** ε (Equation 4, §3.3).
//! * [`planner`] — the closed-form time/cost model behind §2.2's
//!   illustrative example and the knob's cost constraint.
//! * [`rm`] — the **Resource Manager**: spawns instances, tracks the
//!   REQUEST-ID ↔ INSTANCE-ID relay mapping and cost statistics (§5).
//! * [`retrain`] — event-driven **background retraining** with the
//!   data-burst heuristic (§4.2, §5).
//! * [`training`] — initial model construction (the paper's CLI kick-start
//!   path: 20 random configs × 5 queries → ±5% burst → 80:20 split).
//! * [`properties`] — the Table 4 `smartpick.*` property set.
//! * [`driver`] — the [`driver::Smartpick`] facade wiring it all together
//!   (Figure 3's steps 0–9).
//! * [`persist`] — plain-data driver checkpoints for durable tenant state
//!   (the export/restore surface `smartpick-store` serialises).
//!
//! ## Quickstart
//!
//! ```no_run
//! use smartpick_cloudsim::{CloudEnv, Provider};
//! use smartpick_core::driver::Smartpick;
//! use smartpick_core::properties::SmartpickProperties;
//! use smartpick_workloads::tpcds;
//!
//! let env = CloudEnv::new(Provider::Aws);
//! let props = SmartpickProperties::default();
//! let training: Vec<_> = tpcds::TRAINING_QUERIES
//!     .iter()
//!     .map(|&q| tpcds::query(q, 100.0).expect("catalog query"))
//!     .collect();
//! let mut smartpick = Smartpick::train(env, props, &training, 42)?;
//! let outcome = smartpick.submit(&tpcds::query(11, 100.0).expect("catalog query"))?;
//! println!(
//!     "q11 ran in {:.1}s for {} with {}",
//!     outcome.report.seconds(),
//!     outcome.report.total_cost(),
//!     outcome.determination.allocation
//! );
//! # Ok::<(), smartpick_core::SmartpickError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod driver;
pub mod error;
pub mod features;
pub mod history;
pub mod mfe;
pub mod persist;
pub mod planner;
pub mod properties;
pub mod retrain;
pub mod rm;
pub mod similarity;
pub mod tradeoff;
pub mod training;
pub mod wp;

pub use driver::{QueryOutcome, Smartpick};
pub use error::SmartpickError;
pub use features::QueryFeatures;
pub use history::HistoryServer;
pub use properties::SmartpickProperties;
pub use similarity::SimilarityChecker;
pub use wp::{
    ConstraintMode, Determination, PredictionRequest, WorkloadPredictionService, WorkloadPredictor,
};
