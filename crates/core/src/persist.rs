//! Plain-data checkpoint types for the whole driver (`smartpick-store`
//! support).
//!
//! [`DriverState`] captures everything [`crate::driver::Smartpick`] needs
//! to continue *exactly* where a crashed instance stopped: the trained
//! predictor (forest in its flat struct-of-arrays shape, known queries,
//! similarity signatures), the MFE's monitor and simulated-clock stream,
//! the history records, and the driver's own RNG state. Every field is
//! plain data — the binary on-disk encoding lives in `smartpick-store`;
//! this module only defines the shapes and the (export, restore)
//! conversions, which stay inside `smartpick-core` because they touch
//! private component state.
//!
//! Restoration is exact for environments built via
//! [`CloudEnv::new`]/[`CloudEnv::with_family`]: the environment is encoded
//! as `(provider, compute_optimised)`, which fully determines the catalog,
//! performance, pricing and boot models. Environments customised with
//! `with_boot_model`/`with_perf_profile` do **not** round-trip (the
//! custom models are not captured) — such drivers should not be persisted.

use std::sync::Arc;

use smartpick_cloudsim::{CloudEnv, Provider};
use smartpick_ml::dataset::Dataset;
use smartpick_ml::forest::{ForestParams, RandomForest};
use smartpick_ml::tree::{RegressionTree, TreeParams};

use crate::error::SmartpickError;
use crate::features::QueryFeatures;
use crate::mfe::Mfe;
use crate::planner::UniformWorkload;
use crate::properties::SmartpickProperties;
use crate::retrain::RetrainMonitor;
use crate::similarity::{KnownSignature, SimilarityChecker};
use crate::wp::{KnownQuery, WorkloadPredictor};

/// One fitted tree in the flat struct-of-arrays shape (the PR 4 inference
/// layout, reused verbatim as the on-disk shape).
#[derive(Debug, Clone, PartialEq)]
pub struct TreeState {
    /// Split feature per slot (`u16::MAX` marks a leaf).
    pub feature: Vec<u16>,
    /// Split threshold per slot (leaf value inline for leaves).
    pub threshold: Vec<f64>,
    /// Left-child index per split slot (right child is `+ 1`).
    pub children: Vec<u32>,
    /// Unnormalised impurity importance per feature.
    pub importance: Vec<f64>,
}

/// A fitted forest: hyperparameters plus every live tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestState {
    /// Configured ensemble size (the live tree list may be larger after
    /// warm-start retrains).
    pub n_trees: u32,
    /// Per-tree `max_depth`.
    pub max_depth: u32,
    /// Per-tree `min_samples_split`.
    pub min_samples_split: u32,
    /// Per-tree `min_samples_leaf`.
    pub min_samples_leaf: u32,
    /// Per-tree `max_features` (`None` = regression default).
    pub max_features: Option<u32>,
    /// Whether trees train on bootstrap resamples.
    pub bootstrap: bool,
    /// Feature-column count.
    pub n_features: u32,
    /// The live ensemble, oldest tree first.
    pub trees: Vec<TreeState>,
}

/// One known query the predictor was trained on.
#[derive(Debug, Clone, PartialEq)]
pub struct KnownQueryState {
    /// Query identifier.
    pub id: String,
    /// Numeric `query-code` feature value.
    pub code: f64,
    /// Input size the model saw, GB.
    pub input_gb: f64,
    /// Uniform-workload task count for the planner.
    pub tasks: u64,
    /// Uniform-workload mean per-task VM seconds.
    pub task_secs_on_vm: f64,
}

/// The trained predictor, decomposed into plain data.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorState {
    /// The simulated provider.
    pub provider: Provider,
    /// Whether the VM family is compute-optimised — with `provider`, this
    /// fully determines the environment.
    pub compute_optimised: bool,
    /// The fitted forest.
    pub forest: ForestState,
    /// Known queries, in code order.
    pub known: Vec<KnownQueryState>,
    /// Similarity signatures, `(query_id, vector)` pairs.
    pub signatures: Vec<(String, [f64; 4])>,
    /// Whether the model was trained on relay runs.
    pub relay_aware: bool,
    /// Training-time regression standard error.
    pub stderr: f64,
    /// Inclusive search bound on VMs.
    pub max_vm: u32,
    /// Inclusive search bound on SLs.
    pub max_sl: u32,
    /// Minimum total instances a candidate may request.
    pub min_total: u32,
}

/// The retrain monitor's checkpoint: pending samples and counters.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorState {
    /// Pending rows, one Table 3 feature vector per sample.
    pub pending_features: Vec<Vec<f64>>,
    /// Pending regression targets (actual seconds), parallel to
    /// `pending_features`.
    pub pending_targets: Vec<f64>,
    /// Simulated free driver RAM, GB.
    pub free_ram_gb: u32,
    /// Retraining tasks fired so far.
    pub retrain_count: u64,
}

/// The MFE's checkpoint: monitor plus the simulated clock stream.
#[derive(Debug, Clone, PartialEq)]
pub struct MfeState {
    /// Raw state of the clock/contention RNG.
    pub clock_state: [u64; 4],
    /// Simulated epoch seconds advanced so far.
    pub epoch: f64,
    /// The retrain monitor.
    pub monitor: MonitorState,
}

/// A complete driver checkpoint — everything [`crate::driver::Smartpick`]
/// needs to continue exactly where this state was captured.
#[derive(Debug, Clone, PartialEq)]
pub struct DriverState {
    /// The configured `smartpick.*` properties.
    pub props: SmartpickProperties,
    /// The trained predictor.
    pub predictor: PredictorState,
    /// All history records, oldest first.
    pub history: Vec<crate::history::RunRecord>,
    /// The MFE checkpoint.
    pub mfe: MfeState,
    /// Raw state of the driver's per-submission RNG stream.
    pub rng_state: [u64; 4],
}

/// Captures a predictor's full state as plain data.
pub(crate) fn export_predictor(p: &WorkloadPredictor) -> PredictorState {
    let forest = p.forest();
    let params = forest.params();
    let (max_vm, max_sl) = p.search_bounds();
    PredictorState {
        provider: p.env().provider(),
        compute_optimised: p.env().catalog().is_compute_optimised(),
        forest: ForestState {
            n_trees: params.n_trees as u32,
            max_depth: params.tree.max_depth as u32,
            min_samples_split: params.tree.min_samples_split as u32,
            min_samples_leaf: params.tree.min_samples_leaf as u32,
            max_features: params.tree.max_features.map(|m| m as u32),
            bootstrap: params.bootstrap,
            n_features: forest.n_features() as u32,
            trees: forest
                .trees()
                .iter()
                .map(|t| {
                    let (feature, threshold, children) = t.flat_parts();
                    TreeState {
                        feature: feature.to_vec(),
                        threshold: threshold.to_vec(),
                        children: children.to_vec(),
                        importance: t.importance().to_vec(),
                    }
                })
                .collect(),
        },
        known: p
            .known_queries()
            .iter()
            .map(|k| KnownQueryState {
                id: k.id.clone(),
                code: k.code,
                input_gb: k.input_gb,
                tasks: k.workload.tasks as u64,
                task_secs_on_vm: k.workload.task_secs_on_vm,
            })
            .collect(),
        signatures: p
            .similarity()
            .signatures()
            .iter()
            .map(|s| (s.query_id.clone(), s.vector))
            .collect(),
        relay_aware: p.relay_aware(),
        stderr: p.stderr(),
        max_vm,
        max_sl,
        min_total: p.min_total(),
    }
}

/// Rebuilds the environment a state was captured under.
pub(crate) fn restore_env(state: &PredictorState) -> CloudEnv {
    if state.compute_optimised {
        // Any compute-optimised family name selects the same catalog.
        CloudEnv::with_family(state.provider, "compute")
    } else {
        CloudEnv::new(state.provider)
    }
}

/// Rebuilds a predictor from captured state.
///
/// # Errors
///
/// Returns [`SmartpickError::InvalidState`] (or a forwarded
/// [`SmartpickError::Ml`]) when the forest shape fails validation.
pub(crate) fn restore_predictor(
    state: &PredictorState,
) -> Result<WorkloadPredictor, SmartpickError> {
    let env = restore_env(state);
    let f = &state.forest;
    let n_features = f.n_features as usize;
    if n_features != crate::features::N_FEATURES {
        return Err(SmartpickError::InvalidState(format!(
            "forest feature width {n_features} does not match the Table 3 schema"
        )));
    }
    let params = ForestParams {
        n_trees: f.n_trees as usize,
        tree: TreeParams {
            max_depth: f.max_depth as usize,
            min_samples_split: f.min_samples_split as usize,
            min_samples_leaf: f.min_samples_leaf as usize,
            max_features: f.max_features.map(|m| m as usize),
        },
        bootstrap: f.bootstrap,
    };
    let mut trees = Vec::with_capacity(f.trees.len());
    for t in &f.trees {
        trees.push(Arc::new(RegressionTree::from_flat_parts(
            t.feature.clone(),
            t.threshold.clone(),
            t.children.clone(),
            n_features,
            t.importance.clone(),
        )?));
    }
    let forest = RandomForest::from_parts(trees, params, n_features)?;
    let known = state
        .known
        .iter()
        .map(|k| KnownQuery {
            id: k.id.clone(),
            code: k.code,
            input_gb: k.input_gb,
            workload: UniformWorkload {
                tasks: k.tasks as usize,
                task_secs_on_vm: k.task_secs_on_vm,
            },
        })
        .collect();
    let sc = SimilarityChecker::from_signatures(
        state
            .signatures
            .iter()
            .map(|(query_id, vector)| KnownSignature {
                query_id: query_id.clone(),
                vector: *vector,
            })
            .collect(),
    );
    Ok(WorkloadPredictor::assemble(
        env,
        forest,
        known,
        sc,
        state.relay_aware,
        state.stderr,
        state.max_vm,
        state.max_sl,
        state.min_total,
    ))
}

/// Captures the MFE's full state as plain data.
pub(crate) fn export_mfe(mfe: &Mfe) -> MfeState {
    let monitor = mfe.monitor();
    let pending = monitor.pending();
    MfeState {
        clock_state: mfe.clock_state(),
        epoch: mfe.sim_epoch(),
        monitor: MonitorState {
            pending_features: pending.features().to_vec(),
            pending_targets: pending.targets().to_vec(),
            free_ram_gb: monitor.free_ram_gb,
            retrain_count: monitor.retrain_count() as u64,
        },
    }
}

/// Rebuilds an MFE from captured state.
///
/// # Errors
///
/// Returns [`SmartpickError::InvalidState`] when the pending sample shape
/// is inconsistent.
pub(crate) fn restore_mfe(
    env: CloudEnv,
    props: SmartpickProperties,
    state: &MfeState,
) -> Result<Mfe, SmartpickError> {
    let m = &state.monitor;
    if m.pending_features.len() != m.pending_targets.len() {
        return Err(SmartpickError::InvalidState(
            "pending sample/target counts differ".to_owned(),
        ));
    }
    let mut pending = Dataset::new(QueryFeatures::names());
    for (row, &target) in m.pending_features.iter().zip(&m.pending_targets) {
        if row.len() != pending.n_features() {
            return Err(SmartpickError::InvalidState(format!(
                "pending sample width {} does not match the Table 3 schema",
                row.len()
            )));
        }
        pending.push(row.clone(), target);
    }
    let monitor = RetrainMonitor::restore(props, pending, m.free_ram_gb, m.retrain_count as usize);
    Ok(Mfe::restore(env, monitor, state.clock_state, state.epoch))
}
