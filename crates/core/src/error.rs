//! Smartpick error types.

use std::error::Error;
use std::fmt;

use smartpick_cloudsim::CloudSimError;
use smartpick_engine::EngineError;
use smartpick_ml::MlError;

/// Errors reported by the Smartpick system.
#[derive(Debug)]
#[non_exhaustive]
pub enum SmartpickError {
    /// A model-training or prediction failure.
    Ml(MlError),
    /// A simulated-execution failure.
    Engine(EngineError),
    /// A cloud-simulation failure.
    Cloud(CloudSimError),
    /// No training queries / samples were provided.
    NoTrainingData,
    /// The predictor has no known queries and the request had no SQL to
    /// similarity-match.
    UnknownQuery(String),
    /// An invalid property value.
    InvalidProperty {
        /// The `smartpick.*` key.
        key: String,
        /// The offending value.
        value: String,
    },
    /// A persisted driver state failed validation during restore.
    InvalidState(String),
}

impl fmt::Display for SmartpickError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmartpickError::Ml(e) => write!(f, "prediction model error: {e}"),
            SmartpickError::Engine(e) => write!(f, "execution error: {e}"),
            SmartpickError::Cloud(e) => write!(f, "cloud error: {e}"),
            SmartpickError::NoTrainingData => {
                write!(f, "no training data; run the kick-start training first")
            }
            SmartpickError::UnknownQuery(id) => {
                write!(
                    f,
                    "query `{id}` is unknown and cannot be similarity-matched"
                )
            }
            SmartpickError::InvalidProperty { key, value } => {
                write!(f, "invalid value `{value}` for property `{key}`")
            }
            SmartpickError::InvalidState(what) => {
                write!(f, "invalid persisted state: {what}")
            }
        }
    }
}

impl Error for SmartpickError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SmartpickError::Ml(e) => Some(e),
            SmartpickError::Engine(e) => Some(e),
            SmartpickError::Cloud(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MlError> for SmartpickError {
    fn from(e: MlError) -> Self {
        SmartpickError::Ml(e)
    }
}

impl From<EngineError> for SmartpickError {
    fn from(e: EngineError) -> Self {
        SmartpickError::Engine(e)
    }
}

impl From<CloudSimError> for SmartpickError {
    fn from(e: CloudSimError) -> Self {
        SmartpickError::Cloud(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: SmartpickError = MlError::EmptyDataset.into();
        assert!(e.source().is_some());
        let e: SmartpickError = EngineError::EmptyAllocation.into();
        assert!(e.to_string().contains("execution"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SmartpickError>();
    }
}
