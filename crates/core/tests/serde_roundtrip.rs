//! Round-trip tests for the serde pass on the public config/outcome
//! types a multi-threaded service hands across threads (and, in the
//! paper's deployment, across the Thrift RPC boundary):
//! `SmartpickProperties`, `Determination`, and `QueryOutcome`.

use serde::{Deserialize, Serialize};
use smartpick_cloudsim::{CloudEnv, Provider};
use smartpick_core::driver::{QueryOutcome, Smartpick};
use smartpick_core::properties::SmartpickProperties;
use smartpick_core::training::TrainOptions;
use smartpick_core::wp::Determination;
use smartpick_ml::forest::ForestParams;
use smartpick_workloads::tpcds;

fn round_trip<T: Serialize + Deserialize>(value: &T) -> T {
    let json = serde_json::to_string(value).expect("serialises");
    serde_json::from_str(&json).expect("deserialises")
}

fn outcome() -> QueryOutcome {
    let env = CloudEnv::new(Provider::Aws);
    let queries: Vec<_> = [82u32, 68]
        .iter()
        .map(|&q| tpcds::query(q, 100.0).unwrap())
        .collect();
    let opts = TrainOptions {
        configs_per_query: 6,
        burst_factor: 3,
        forest: ForestParams {
            n_trees: 20,
            ..ForestParams::default()
        },
        max_vm: 5,
        max_sl: 5,
        ..TrainOptions::default()
    };
    let mut sp = Smartpick::train_with_options(
        env,
        SmartpickProperties {
            // Low trigger so the outcome exercises the retrain arm too.
            error_difference_trigger_secs: 1e-6,
            ..SmartpickProperties::default()
        },
        &queries,
        &opts,
        5,
    )
    .unwrap()
    .0;
    sp.submit(&tpcds::query(82, 100.0).unwrap()).unwrap()
}

#[test]
fn properties_round_trip() {
    let props = SmartpickProperties {
        provider: Provider::Gcp,
        instance_family: "e2".to_owned(),
        relay: false,
        knob: 0.7,
        max_batch: 13,
        same_instance_retrain: true,
        min_ram_gb: 8,
        error_difference_trigger_secs: 42.5,
    };
    assert_eq!(round_trip(&props), props);
}

#[test]
fn determination_round_trip() {
    let outcome = outcome();
    let det: Determination = round_trip(&outcome.determination);
    assert_eq!(det.allocation, outcome.determination.allocation);
    assert_eq!(
        det.predicted_seconds,
        outcome.determination.predicted_seconds
    );
    assert_eq!(det.predicted_cost, outcome.determination.predicted_cost);
    assert_eq!(det.et_list, outcome.determination.et_list);
    assert_eq!(det.evaluations, outcome.determination.evaluations);
    assert_eq!(det.known_query, outcome.determination.known_query);
    assert_eq!(det.matched_query, outcome.determination.matched_query);
    assert_eq!(det.match_similarity, outcome.determination.match_similarity);
}

#[test]
fn query_outcome_round_trip() {
    let outcome = outcome();
    assert!(outcome.retrain.is_some(), "retrain arm must be exercised");
    let back: QueryOutcome = round_trip(&outcome);
    assert_eq!(
        back.determination.allocation,
        outcome.determination.allocation
    );
    assert_eq!(back.report.query_id, outcome.report.query_id);
    assert_eq!(back.report.seconds(), outcome.report.seconds());
    assert_eq!(back.report.cost, outcome.report.cost);
    assert_eq!(
        back.report.stage_completions,
        outcome.report.stage_completions
    );
    assert_eq!(back.retrain, outcome.retrain);
    // A cloned outcome is an independent value (Clone satellite).
    let cloned = outcome.clone();
    assert_eq!(cloned.prediction_error(), outcome.prediction_error());
}
