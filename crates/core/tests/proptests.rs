//! Property-based tests for the planner's closed-form model and the
//! Equation 4 knob.

use proptest::prelude::*;

use smartpick_cloudsim::{CloudEnv, Money, Provider};
use smartpick_core::planner::{Planner, UniformWorkload};
use smartpick_core::tradeoff::{choose_with_knob, EtEntry};
use smartpick_engine::{Allocation, RelayPolicy};

proptest! {
    /// Adding instances never makes the planner's expected time worse.
    #[test]
    fn planner_time_monotone_in_capacity(
        tasks in 1usize..2000,
        task_secs in 0.5f64..10.0,
        n_vm in 0u32..8,
        n_sl in 0u32..8,
    ) {
        prop_assume!(n_vm + n_sl > 0);
        let p = Planner::new(CloudEnv::new(Provider::Aws));
        let w = UniformWorkload { tasks, task_secs_on_vm: task_secs };
        let base = p.expected_seconds(&w, &Allocation::new(n_vm, n_sl));
        let more_vm = p.expected_seconds(&w, &Allocation::new(n_vm + 1, n_sl));
        let more_sl = p.expected_seconds(&w, &Allocation::new(n_vm, n_sl + 1));
        prop_assert!(more_vm <= base + 1e-9, "vm: {more_vm} > {base}");
        prop_assert!(more_sl <= base + 1e-9, "sl: {more_sl} > {base}");
    }

    /// Expected cost is non-negative and grows with estimated time.
    #[test]
    fn planner_cost_monotone_in_time(
        n_vm in 0u32..8,
        n_sl in 0u32..8,
        secs in 1.0f64..2000.0,
        extra in 1.0f64..500.0,
    ) {
        prop_assume!(n_vm + n_sl > 0);
        for relay in [RelayPolicy::None, RelayPolicy::Relay] {
            let p = Planner::new(CloudEnv::new(Provider::Gcp));
            let alloc = Allocation::new(n_vm, n_sl).with_relay(relay);
            let a = p.expected_cost(&alloc, secs);
            let b = p.expected_cost(&alloc, secs + extra);
            prop_assert!(a.dollars() >= 0.0);
            prop_assert!(b >= a, "{relay:?}: {b} < {a} at {secs}+{extra}");
        }
    }

    /// Relay never costs more than the same allocation without relay.
    #[test]
    fn planner_relay_never_costs_more(
        n_vm in 1u32..8,
        n_sl in 1u32..8,
        secs in 1.0f64..2000.0,
    ) {
        let p = Planner::new(CloudEnv::new(Provider::Aws));
        let plain = p.expected_cost(&Allocation::new(n_vm, n_sl), secs);
        let relay = p.expected_cost(
            &Allocation::new(n_vm, n_sl).with_relay(RelayPolicy::Relay),
            secs,
        );
        prop_assert!(relay <= plain, "{relay} > {plain}");
    }

    /// Whatever the knob picks satisfies both Equation 4 constraints, and
    /// enlarging ε never picks something more expensive.
    #[test]
    fn knob_choice_is_feasible_and_monotone(
        entries in prop::collection::vec(
            (1.0f64..500.0, 0.001f64..0.2), 1..40
        ),
        eps_small in 0.05f64..0.5,
        eps_extra in 0.0f64..1.0,
    ) {
        let et: Vec<EtEntry> = entries
            .iter()
            .enumerate()
            .map(|(i, &(secs, cost))| EtEntry {
                allocation: Allocation::new(1 + (i % 5) as u32, (i % 3) as u32),
                est_seconds: secs,
                est_cost: Money::from_dollars(cost),
            })
            .collect();
        // Best-performance reference: fastest entry.
        let best = et
            .iter()
            .min_by(|a, b| a.est_seconds.partial_cmp(&b.est_seconds).unwrap())
            .unwrap();
        let (t_best, c_best) = (best.est_seconds, best.est_cost);

        let small = choose_with_knob(&et, t_best, c_best, eps_small);
        if let Some(i) = small {
            prop_assert!(et[i].est_seconds <= t_best * (1.0 + eps_small) + 1e-9);
            prop_assert!(et[i].est_cost <= c_best);
        }
        let large = choose_with_knob(&et, t_best, c_best, eps_small + eps_extra);
        if let (Some(i), Some(j)) = (small, large) {
            prop_assert!(
                et[j].est_cost <= et[i].est_cost,
                "larger knob picked pricier entry"
            );
        }
        // A feasible choice at small ε implies one at larger ε.
        if small.is_some() {
            prop_assert!(large.is_some());
        }
    }

    /// ε = 0 always keeps the best-performance configuration.
    #[test]
    fn zero_knob_never_overrides(n in 1usize..20) {
        let et: Vec<EtEntry> = (0..n)
            .map(|i| EtEntry {
                allocation: Allocation::new(i as u32 + 1, 0),
                est_seconds: 10.0 + i as f64,
                est_cost: Money::from_dollars(0.01),
            })
            .collect();
        prop_assert_eq!(
            choose_with_knob(&et, 10.0, Money::from_dollars(0.01), 0.0),
            None
        );
    }
}
