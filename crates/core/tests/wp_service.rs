//! Integration tests of the Workload Prediction service boundary — the
//! trait other SEDA systems consume (§5, §6.3.2).

use std::sync::OnceLock;

use proptest::prelude::*;
use smartpick_cloudsim::{CloudEnv, Provider};
use smartpick_core::training::{train_predictor, TrainOptions};
use smartpick_core::wp::{ConstraintMode, PredictionRequest, WorkloadPredictionService};
use smartpick_core::WorkloadPredictor;
use smartpick_ml::forest::ForestParams;
use smartpick_workloads::tpcds;

fn predictor() -> WorkloadPredictor {
    let env = CloudEnv::new(Provider::Aws);
    let queries: Vec<_> = tpcds::TRAINING_QUERIES
        .iter()
        .map(|&q| tpcds::query(q, 100.0).unwrap())
        .collect();
    let opts = TrainOptions {
        configs_per_query: 8,
        burst_factor: 4,
        forest: ForestParams {
            n_trees: 30,
            ..ForestParams::default()
        },
        ..TrainOptions::default()
    };
    train_predictor(&env, &queries, &opts, 42).unwrap().0
}

#[test]
fn usable_as_a_trait_object() {
    let wp = predictor();
    let service: &dyn WorkloadPredictionService = &wp;
    let det = service
        .determine(&PredictionRequest::new(tpcds::query(11, 100.0).unwrap(), 1))
        .expect("determination succeeds");
    assert!(det.allocation.is_viable());
}

#[test]
fn search_honours_the_training_floor() {
    // Trained with min_total = 4: no determination may request fewer.
    let wp = predictor();
    for (qnum, seed) in [(11u32, 1u64), (49, 2), (82, 3)] {
        for constraint in [
            ConstraintMode::Hybrid,
            ConstraintMode::VmOnly,
            ConstraintMode::SlOnly,
        ] {
            let det = wp
                .determine(&PredictionRequest {
                    query: tpcds::query(qnum, 100.0).unwrap(),
                    knob: 0.0,
                    constraint,
                    seed,
                })
                .unwrap();
            assert!(
                det.allocation.total_instances() >= 4,
                "q{qnum} {constraint:?}: {}",
                det.allocation
            );
            for e in &det.et_list {
                assert!(e.allocation.total_instances() >= 4);
            }
        }
    }
}

#[test]
fn et_list_is_internally_consistent() {
    let wp = predictor();
    let det = wp
        .determine(&PredictionRequest::new(tpcds::query(74, 100.0).unwrap(), 7))
        .unwrap();
    assert_eq!(det.et_list.len(), det.evaluations);
    for e in &det.et_list {
        assert!(e.est_seconds.is_finite());
        assert!(e.est_cost.dollars() >= 0.0);
        assert!(e.allocation.is_viable());
    }
    // The chosen configuration's prediction matches one of the probes
    // (knob 0 keeps the best probe).
    let best = det
        .et_list
        .iter()
        .map(|e| e.est_seconds)
        .fold(f64::INFINITY, f64::min);
    assert!((det.predicted_seconds - best).abs() < 1e-9);
}

#[test]
fn registering_a_query_makes_it_known() {
    let mut wp = predictor();
    let alien = tpcds::query(62, 100.0).unwrap();
    assert!(wp.code_of("tpcds-q62").is_none());
    let code = wp.register_query(&alien);
    assert_eq!(wp.code_of("tpcds-q62"), Some(code));
    // Re-registration is idempotent.
    assert_eq!(wp.register_query(&alien), code);
    let det = wp.determine(&PredictionRequest::new(alien, 9)).unwrap();
    assert!(det.known_query);
}

#[test]
fn predictions_scale_with_instance_count() {
    // More instances must not predict (much) slower completion for the
    // same query — the learned surface is broadly monotone.
    let wp = predictor();
    let q = tpcds::query(74, 100.0).unwrap();
    let small = wp
        .predict_seconds(&q, &smartpick_engine::Allocation::new(2, 2))
        .unwrap();
    let large = wp
        .predict_seconds(&q, &smartpick_engine::Allocation::new(10, 10))
        .unwrap();
    assert!(
        large < small * 1.1,
        "20 instances ({large:.1}s) should not be slower than 4 ({small:.1}s)"
    );
}

#[test]
fn batch_sweep_probes_include_the_grid_optimum() {
    // The vectorized path pre-evaluates the whole grid, so the model's
    // true argmin over the candidate set must always be among the probes
    // (the first greedy probe) — a guarantee the GP surrogate never made.
    let wp = predictor();
    let q = tpcds::query(11, 100.0).unwrap();
    let det = wp
        .determine(&PredictionRequest::new(q.clone(), 31))
        .unwrap();
    // Exhaustively find the model's best candidate.
    let (max_vm, max_sl) = wp.search_bounds();
    let mut best = f64::INFINITY;
    let mut best_alloc = smartpick_engine::Allocation::new(0, 0);
    for n_vm in 0..=max_vm {
        for n_sl in 0..=max_sl {
            if n_vm + n_sl < 4 {
                continue;
            }
            let alloc = smartpick_engine::Allocation::new(n_vm, n_sl);
            let t = wp.predict_seconds(&q, &alloc).unwrap();
            if t < best {
                best = t;
                best_alloc = alloc;
            }
        }
    }
    assert!(
        det.et_list
            .iter()
            .any(|e| e.allocation.n_vm == best_alloc.n_vm && e.allocation.n_sl == best_alloc.n_sl),
        "ET_l must contain the grid optimum {best_alloc}"
    );
    // And the chosen prediction sits within the δ-noise band of it.
    assert!(det.predicted_seconds <= best + 1.0);
}

#[test]
fn vectorized_and_reference_paths_agree_on_the_model() {
    // Both paths consume the same forest: every probe in either path's
    // ET_l must equal the scalar model prediction for its allocation,
    // up to the δ observation noise (σ = 0.25, so 6σ bounds it).
    let wp = predictor();
    let q = tpcds::query(49, 100.0).unwrap();
    for det in [
        wp.determine(&PredictionRequest::new(q.clone(), 5)).unwrap(),
        wp.determine_reference(&PredictionRequest::new(q.clone(), 5))
            .unwrap(),
    ] {
        for e in &det.et_list {
            let alloc = smartpick_engine::Allocation::new(e.allocation.n_vm, e.allocation.n_sl);
            let model = wp.predict_seconds(&q, &alloc).unwrap();
            assert!(
                (e.est_seconds - model).abs() < 1.5,
                "probe {} drifted from the model: {} vs {model}",
                e.allocation,
                e.est_seconds
            );
        }
    }
}

#[test]
fn determinations_are_deterministic_given_seed() {
    let wp = predictor();
    let q = tpcds::query(82, 100.0).unwrap();
    let a = wp
        .determine(&PredictionRequest::new(q.clone(), 77))
        .unwrap();
    let b = wp.determine(&PredictionRequest::new(q, 77)).unwrap();
    assert_eq!(a.allocation, b.allocation);
    assert_eq!(a.predicted_seconds, b.predicted_seconds);
    assert_eq!(a.et_list, b.et_list);
}

#[test]
fn relay_aware_predictor_emits_relay_allocations() {
    let env = CloudEnv::new(Provider::Aws);
    let queries: Vec<_> = [82u32, 74]
        .iter()
        .map(|&q| tpcds::query(q, 100.0).unwrap())
        .collect();
    let opts = TrainOptions {
        configs_per_query: 6,
        burst_factor: 3,
        relay: true,
        forest: ForestParams {
            n_trees: 20,
            ..ForestParams::default()
        },
        ..TrainOptions::default()
    };
    let (wp, _) = train_predictor(&env, &queries, &opts, 5).unwrap();
    assert!(wp.relay_aware());
    let det = wp
        .determine(&PredictionRequest::new(tpcds::query(74, 100.0).unwrap(), 3))
        .unwrap();
    if det.allocation.n_vm > 0 && det.allocation.n_sl > 0 {
        assert_eq!(det.allocation.relay, smartpick_engine::RelayPolicy::Relay);
    }
}

#[test]
fn determine_batch_is_bit_identical_to_sequential_determines() {
    let wp = predictor();
    // Mixed queries (known + alien), constraint modes, knobs, and seeds:
    // every request must come back exactly as its own sequential
    // determine() would have answered it.
    let mut requests = Vec::new();
    let mut k = 0u64;
    for qnum in [11u32, 49, 82, 62] {
        for constraint in [
            ConstraintMode::Hybrid,
            ConstraintMode::VmOnly,
            ConstraintMode::SlOnly,
            ConstraintMode::EqualSlVm,
        ] {
            k += 1;
            requests.push(PredictionRequest {
                query: tpcds::query(qnum, 100.0).unwrap(),
                knob: (k % 4) as f64 * 0.1,
                constraint,
                seed: 1000 + k,
            });
        }
    }
    let batch = wp.determine_batch(&requests).unwrap();
    assert_eq!(batch.len(), requests.len());
    for (request, got) in requests.iter().zip(&batch) {
        let want = wp.determine(request).unwrap();
        assert_eq!(got.allocation, want.allocation);
        assert_eq!(
            got.predicted_seconds.to_bits(),
            want.predicted_seconds.to_bits(),
            "{:?}",
            request.constraint
        );
        assert_eq!(got.predicted_cost, want.predicted_cost);
        assert_eq!(got.et_list, want.et_list);
        assert_eq!(got.evaluations, want.evaluations);
        assert_eq!(got.known_query, want.known_query);
        assert_eq!(got.matched_query, want.matched_query);
        assert_eq!(
            got.match_similarity.to_bits(),
            want.match_similarity.to_bits()
        );
    }
    // The empty batch is a no-op, not an error.
    assert!(wp.determine_batch(&[]).unwrap().is_empty());
}

/// Asserts two determinations are bitwise equal, field by field.
fn assert_bit_identical(
    got: &smartpick_core::Determination,
    want: &smartpick_core::Determination,
    context: &str,
) {
    assert_eq!(got.allocation, want.allocation, "{context}");
    assert_eq!(
        got.predicted_seconds.to_bits(),
        want.predicted_seconds.to_bits(),
        "{context}"
    );
    assert_eq!(got.predicted_cost, want.predicted_cost, "{context}");
    assert_eq!(got.et_list, want.et_list, "{context}");
    assert_eq!(got.evaluations, want.evaluations, "{context}");
    assert_eq!(got.known_query, want.known_query, "{context}");
    assert_eq!(got.matched_query, want.matched_query, "{context}");
    assert_eq!(
        got.match_similarity.to_bits(),
        want.match_similarity.to_bits(),
        "{context}"
    );
}

#[test]
fn duplicate_requests_in_a_batch_dedup_without_changing_results() {
    // ROADMAP item 1: identical requests inside one frame are computed
    // once and fanned out. The fan-out must be invisible — every slot,
    // duplicate or not, equals its own sequential determine().
    let wp = predictor();
    let base = PredictionRequest::new(tpcds::query(11, 100.0).unwrap(), 21);
    let other = PredictionRequest {
        query: tpcds::query(49, 100.0).unwrap(),
        knob: 0.2,
        constraint: ConstraintMode::VmOnly,
        seed: 22,
    };
    // Same query + seed but different knob must NOT collapse together.
    let near_miss = PredictionRequest {
        knob: 0.3,
        ..base.clone()
    };
    let requests = vec![
        base.clone(),
        other.clone(),
        base.clone(),
        near_miss.clone(),
        base,
        other,
        near_miss,
    ];
    let batch = wp.determine_batch(&requests).unwrap();
    assert_eq!(batch.len(), requests.len());
    for (i, (request, got)) in requests.iter().zip(&batch).enumerate() {
        let want = wp.determine(request).unwrap();
        assert_bit_identical(got, &want, &format!("slot {i}"));
    }
    // Duplicates really did collapse to the same answer object-for-object.
    assert_eq!(batch[0].et_list, batch[2].et_list);
    assert_eq!(batch[0].et_list, batch[4].et_list);
}

/// Trains the shared predictor once for the property test below.
fn shared_predictor() -> &'static WorkloadPredictor {
    static WP: OnceLock<WorkloadPredictor> = OnceLock::new();
    WP.get_or_init(predictor)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any multiset of requests drawn from a small pool — so duplicates
    /// are frequent — answers identically to the undeduped sequential
    /// path, slot for slot.
    #[test]
    fn dedup_batches_match_the_undeduped_path(
        picks in prop::collection::vec(0usize..5, 1..10),
    ) {
        let wp = shared_predictor();
        let pool = [
            PredictionRequest::new(tpcds::query(11, 100.0).unwrap(), 101),
            PredictionRequest::new(tpcds::query(49, 100.0).unwrap(), 102),
            PredictionRequest {
                query: tpcds::query(82, 100.0).unwrap(),
                knob: 0.1,
                constraint: ConstraintMode::SlOnly,
                seed: 103,
            },
            PredictionRequest::new(tpcds::query(11, 100.0).unwrap(), 104),
            PredictionRequest {
                query: tpcds::query(49, 100.0).unwrap(),
                knob: 0.0,
                constraint: ConstraintMode::EqualSlVm,
                seed: 102,
            },
        ];
        let requests: Vec<PredictionRequest> =
            picks.iter().map(|&i| pool[i].clone()).collect();
        let batch = wp.determine_batch(&requests).unwrap();
        prop_assert_eq!(batch.len(), requests.len());
        for (i, (request, got)) in requests.iter().zip(&batch).enumerate() {
            let want = wp.determine(request).unwrap();
            assert_bit_identical(got, &want, &format!("slot {i} of {picks:?}"));
        }
    }
}
