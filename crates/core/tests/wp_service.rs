//! Integration tests of the Workload Prediction service boundary — the
//! trait other SEDA systems consume (§5, §6.3.2).

use smartpick_cloudsim::{CloudEnv, Provider};
use smartpick_core::training::{train_predictor, TrainOptions};
use smartpick_core::wp::{ConstraintMode, PredictionRequest, WorkloadPredictionService};
use smartpick_core::WorkloadPredictor;
use smartpick_ml::forest::ForestParams;
use smartpick_workloads::tpcds;

fn predictor() -> WorkloadPredictor {
    let env = CloudEnv::new(Provider::Aws);
    let queries: Vec<_> = tpcds::TRAINING_QUERIES
        .iter()
        .map(|&q| tpcds::query(q, 100.0).unwrap())
        .collect();
    let opts = TrainOptions {
        configs_per_query: 8,
        burst_factor: 4,
        forest: ForestParams {
            n_trees: 30,
            ..ForestParams::default()
        },
        ..TrainOptions::default()
    };
    train_predictor(&env, &queries, &opts, 42).unwrap().0
}

#[test]
fn usable_as_a_trait_object() {
    let wp = predictor();
    let service: &dyn WorkloadPredictionService = &wp;
    let det = service
        .determine(&PredictionRequest::new(tpcds::query(11, 100.0).unwrap(), 1))
        .expect("determination succeeds");
    assert!(det.allocation.is_viable());
}

#[test]
fn search_honours_the_training_floor() {
    // Trained with min_total = 4: no determination may request fewer.
    let wp = predictor();
    for (qnum, seed) in [(11u32, 1u64), (49, 2), (82, 3)] {
        for constraint in [
            ConstraintMode::Hybrid,
            ConstraintMode::VmOnly,
            ConstraintMode::SlOnly,
        ] {
            let det = wp
                .determine(&PredictionRequest {
                    query: tpcds::query(qnum, 100.0).unwrap(),
                    knob: 0.0,
                    constraint,
                    seed,
                })
                .unwrap();
            assert!(
                det.allocation.total_instances() >= 4,
                "q{qnum} {constraint:?}: {}",
                det.allocation
            );
            for e in &det.et_list {
                assert!(e.allocation.total_instances() >= 4);
            }
        }
    }
}

#[test]
fn et_list_is_internally_consistent() {
    let wp = predictor();
    let det = wp
        .determine(&PredictionRequest::new(tpcds::query(74, 100.0).unwrap(), 7))
        .unwrap();
    assert_eq!(det.et_list.len(), det.evaluations);
    for e in &det.et_list {
        assert!(e.est_seconds.is_finite());
        assert!(e.est_cost.dollars() >= 0.0);
        assert!(e.allocation.is_viable());
    }
    // The chosen configuration's prediction matches one of the probes
    // (knob 0 keeps the best probe).
    let best = det
        .et_list
        .iter()
        .map(|e| e.est_seconds)
        .fold(f64::INFINITY, f64::min);
    assert!((det.predicted_seconds - best).abs() < 1e-9);
}

#[test]
fn registering_a_query_makes_it_known() {
    let mut wp = predictor();
    let alien = tpcds::query(62, 100.0).unwrap();
    assert!(wp.code_of("tpcds-q62").is_none());
    let code = wp.register_query(&alien);
    assert_eq!(wp.code_of("tpcds-q62"), Some(code));
    // Re-registration is idempotent.
    assert_eq!(wp.register_query(&alien), code);
    let det = wp.determine(&PredictionRequest::new(alien, 9)).unwrap();
    assert!(det.known_query);
}

#[test]
fn predictions_scale_with_instance_count() {
    // More instances must not predict (much) slower completion for the
    // same query — the learned surface is broadly monotone.
    let wp = predictor();
    let q = tpcds::query(74, 100.0).unwrap();
    let small = wp
        .predict_seconds(&q, &smartpick_engine::Allocation::new(2, 2))
        .unwrap();
    let large = wp
        .predict_seconds(&q, &smartpick_engine::Allocation::new(10, 10))
        .unwrap();
    assert!(
        large < small * 1.1,
        "20 instances ({large:.1}s) should not be slower than 4 ({small:.1}s)"
    );
}

#[test]
fn relay_aware_predictor_emits_relay_allocations() {
    let env = CloudEnv::new(Provider::Aws);
    let queries: Vec<_> = [82u32, 74]
        .iter()
        .map(|&q| tpcds::query(q, 100.0).unwrap())
        .collect();
    let opts = TrainOptions {
        configs_per_query: 6,
        burst_factor: 3,
        relay: true,
        forest: ForestParams {
            n_trees: 20,
            ..ForestParams::default()
        },
        ..TrainOptions::default()
    };
    let (wp, _) = train_predictor(&env, &queries, &opts, 5).unwrap();
    assert!(wp.relay_aware());
    let det = wp
        .determine(&PredictionRequest::new(tpcds::query(74, 100.0).unwrap(), 3))
        .unwrap();
    if det.allocation.n_vm > 0 && det.allocation.n_sl > 0 {
        assert_eq!(det.allocation.relay, smartpick_engine::RelayPolicy::Relay);
    }
}
