//! Cross-baseline integration tests: search quality and decision
//! characteristics of the §3.2 / §6.3 comparison systems.

use smartpick_baselines::cherrypick::CherryPick;
use smartpick_baselines::libra::Libra;
use smartpick_baselines::optimuscloud::OptimusCloud;
use smartpick_baselines::pcr::{performance_cost_ratio, DecisionMeasurement};
use smartpick_baselines::policies::{policy_by_name, ProvisioningPolicy};
use smartpick_cloudsim::{CloudEnv, Provider};
use smartpick_core::training::{train_predictor, TrainOptions};
use smartpick_core::WorkloadPredictor;
use smartpick_engine::simulate_query;
use smartpick_ml::forest::ForestParams;
use smartpick_workloads::tpcds;

fn predictor(env: &CloudEnv) -> WorkloadPredictor {
    let queries: Vec<_> = tpcds::TRAINING_QUERIES
        .iter()
        .map(|&q| tpcds::query(q, 100.0).unwrap())
        .collect();
    let opts = TrainOptions {
        configs_per_query: 8,
        burst_factor: 4,
        forest: ForestParams {
            n_trees: 30,
            ..ForestParams::default()
        },
        ..TrainOptions::default()
    };
    train_predictor(env, &queries, &opts, 42).unwrap().0
}

/// Every policy produces a runnable allocation, and running it completes.
#[test]
fn all_policies_produce_runnable_allocations() {
    let env = CloudEnv::new(Provider::Aws);
    let wp = predictor(&env);
    let query = tpcds::query(68, 100.0).unwrap();
    for name in [
        "VM-only",
        "SL-only",
        "Smartpick",
        "Smartpick-r",
        "SplitServe",
        "Cocoa",
    ] {
        let policy = policy_by_name(name).expect("known policy");
        let alloc = policy.decide(&wp, &query, 3).expect("decision succeeds");
        assert!(alloc.is_viable(), "{name}");
        let report = simulate_query(&query, &alloc, &env, 11).expect("run succeeds");
        assert!(report.seconds() > 0.0, "{name}");
    }
}

/// LIBRA's split is sane: at least one VM, serverless share bounded.
#[test]
fn libra_produces_bounded_hybrid() {
    let env = CloudEnv::new(Provider::Aws);
    let wp = predictor(&env);
    let query = tpcds::query(11, 100.0).unwrap();
    let alloc = Libra::default().decide(&wp, &query, 4).unwrap();
    assert!(alloc.n_vm >= 1);
    assert!(alloc.total_instances() >= 4);
    let report = simulate_query(&query, &alloc, &env, 5).unwrap();
    assert!(report.seconds() > 0.0);
}

/// CherryPick and OptimusCloud settle on configurations whose *actual*
/// performance is competitive, but with very different decision costs —
/// the Figure 2 story at the outcome level.
#[test]
fn searchers_find_competitive_configs_at_different_costs() {
    let env = CloudEnv::new(Provider::Aws);
    let wp = predictor(&env);
    let query = tpcds::query(49, 100.0).unwrap();

    let cp = CherryPick::default().search(&env, &query, 7).unwrap();
    let oc = OptimusCloud::default().search(&wp, &query).unwrap();

    let cp_actual = simulate_query(&query, &cp.allocation, &env, 21).unwrap();
    let oc_actual = simulate_query(&query, &oc.allocation, &env, 21).unwrap();

    // Both land within 2x of each other (both are sane searches).
    let ratio = cp_actual.seconds() / oc_actual.seconds();
    assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");

    // CherryPick paid real probing money; OptimusCloud paid none at
    // decision time (amortised training only).
    assert!(cp.probe_cost.dollars() > 0.01);
    assert_eq!(oc.model_cost.dollars(), 0.04);

    // PCr tells them apart exactly as Eq. 3 intends.
    let cp_pcr = performance_cost_ratio(&DecisionMeasurement {
        time_seconds: cp.wall_seconds.max(1e-6),
        cost: cp.probe_cost,
    });
    let oc_pcr = performance_cost_ratio(&DecisionMeasurement {
        time_seconds: oc.wall_seconds.max(1e-6),
        cost: oc.model_cost,
    });
    assert!(cp_pcr.is_finite() && oc_pcr.is_finite());
}

/// The OptimusCloud sweep visits the whole (floored) grid every time.
#[test]
fn optimuscloud_grid_size_is_exact() {
    let env = CloudEnv::new(Provider::Aws);
    let wp = predictor(&env);
    let oc = OptimusCloud {
        max_vm: 10,
        max_sl: 10,
        ..OptimusCloud::default()
    };
    let out = oc.search(&wp, &tpcds::query(82, 100.0).unwrap()).unwrap();
    assert_eq!(out.evaluations, 11 * 11 - 1);
}
