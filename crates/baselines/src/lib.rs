//! # smartpick-baselines
//!
//! The comparison systems of the Smartpick paper's evaluation, implemented
//! from their published descriptions:
//!
//! * [`policies`] — provisioning policies compared in Figures 5–7:
//!   VM-only, SL-only, Smartpick (plain and relay), **SplitServe** (equal
//!   SL/VM counts + static segue timeout, Jain et al., Middleware '20) and
//!   **Cocoa** (static-parameter, SL-favouring; Oh & Song, IC2E '21).
//!   Cocoa and SplitServe consume Smartpick's workload-prediction module
//!   as an external service, exactly as §6.3.2 wires them up.
//! * [`cherrypick`] — **CherryPick** (Alipourfard et al., NSDI '17):
//!   Bayesian optimisation where every probe is a *live run* — low search
//!   complexity, high probing cost (§3.2).
//! * [`optimuscloud`] — **OptimusCloud** (Mahgoub et al., ATC '20):
//!   Random-Forest prediction with an *exhaustive* configuration sweep —
//!   no probing cost, high search complexity (§3.2).
//! * [`libra`] — **LIBRA** (Raza et al., IC2E '21): the cost-indifference
//!   point between serverless and VM capacity (§7's related work).
//! * [`pcr`] — the performance–cost ratio `PCr = (1/Time)/(1 + cost)` of
//!   Equation 3, used to compare the three search strategies (Figure 2).

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod cherrypick;
pub mod libra;
pub mod optimuscloud;
pub mod pcr;
pub mod policies;

pub use cherrypick::CherryPick;
pub use libra::Libra;
pub use optimuscloud::OptimusCloud;
pub use pcr::{performance_cost_ratio, DecisionMeasurement};
pub use policies::{policy_by_name, ProvisioningPolicy};
