//! CherryPick-style search: Bayesian optimisation over **live runs**
//! (Alipourfard et al., NSDI '17).
//!
//! CherryPick has no learned performance model — each configuration it
//! probes is executed for real, so its decision cost is dominated by the
//! charges of the probing runs (§3.2: "incurs a higher cost from the
//! projected execution runs on live VM and SL instances"). The paper
//! extends it to the hybrid SL+VM space to compare against RF + BO.

use std::time::Instant;

use smartpick_cloudsim::{CloudEnv, Money};
use smartpick_engine::{simulate_query, Allocation, EngineError, QueryProfile};
use smartpick_ml::bayesopt::{BayesianOptimizer, BoParams};

/// Outcome of one CherryPick decision.
#[derive(Debug, Clone)]
pub struct CherryPickOutcome {
    /// The configuration it settled on.
    pub allocation: Allocation,
    /// Best observed completion time, seconds.
    pub best_seconds: f64,
    /// Wall-clock the search took (inference latency).
    pub wall_seconds: f64,
    /// Total charges of the live probing runs (the decision's cost).
    pub probe_cost: Money,
    /// Live runs executed.
    pub probes: usize,
}

/// The CherryPick baseline.
#[derive(Debug, Clone)]
pub struct CherryPick {
    /// BO parameters (same acquisition machinery as Smartpick's search,
    /// per the §3.2 comparison setup).
    pub bo: BoParams,
    /// Inclusive `{nVM, nSL}` grid bound.
    pub max_vm: u32,
    /// Inclusive grid bound for SLs.
    pub max_sl: u32,
}

impl Default for CherryPick {
    fn default() -> Self {
        CherryPick {
            bo: BoParams {
                n_init: 4,
                max_evals: 20,
                ..BoParams::default()
            },
            max_vm: 10,
            max_sl: 10,
        }
    }
}

impl CherryPick {
    /// Searches for the fastest configuration by live-probing the cloud.
    ///
    /// # Errors
    ///
    /// Propagates the first engine error a probe run hits.
    pub fn search(
        &self,
        env: &CloudEnv,
        query: &QueryProfile,
        seed: u64,
    ) -> Result<CherryPickOutcome, EngineError> {
        let mut candidates = Vec::new();
        for n_vm in 0..=self.max_vm {
            for n_sl in 0..=self.max_sl {
                if n_vm + n_sl > 0 {
                    candidates.push(vec![n_vm as f64, n_sl as f64]);
                }
            }
        }
        let mut probe_cost = Money::ZERO;
        let mut probes = 0usize;
        let mut first_error: Option<EngineError> = None;
        let mut probe_wall = 0.0f64;

        let started = Instant::now();
        let bo = BayesianOptimizer::new(self.bo.clone());
        let result = bo.maximize(&candidates, seed, |x| {
            let alloc = Allocation::new(x[0] as u32, x[1] as u32);
            let probe_started = Instant::now();
            let outcome = simulate_query(query, &alloc, env, seed ^ probes as u64);
            probe_wall += probe_started.elapsed().as_secs_f64();
            match outcome {
                Ok(report) => {
                    probes += 1;
                    probe_cost += report.total_cost();
                    -report.seconds()
                }
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                    f64::NEG_INFINITY
                }
            }
        });
        // The paper's PCr charges the probing runs as *cost* (they execute
        // on the cloud) and counts only the optimizer's own latency as
        // *Time* (§3.2), so the probe execution time is excluded here.
        let wall_seconds = (started.elapsed().as_secs_f64() - probe_wall).max(1e-6);
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(CherryPickOutcome {
            allocation: Allocation::new(result.best_x[0] as u32, result.best_x[1] as u32),
            best_seconds: -result.best_objective,
            wall_seconds,
            probe_cost,
            probes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartpick_cloudsim::Provider;
    use smartpick_workloads::tpcds;

    #[test]
    fn finds_a_decent_configuration_at_real_probing_cost() {
        let env = CloudEnv::new(Provider::Aws);
        let q = tpcds::query(82, 100.0).unwrap();
        let cp = CherryPick {
            max_vm: 5,
            max_sl: 5,
            ..CherryPick::default()
        };
        let out = cp.search(&env, &q, 3).unwrap();
        assert!(out.allocation.is_viable());
        assert!(out.probes >= cp.bo.n_init);
        // Live probing is the expensive part: many cents across runs.
        assert!(
            out.probe_cost.cents() > 1.0,
            "probing should cost real money: {}",
            out.probe_cost
        );
        assert!(out.best_seconds > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let env = CloudEnv::new(Provider::Aws);
        let q = tpcds::query(82, 100.0).unwrap();
        let cp = CherryPick {
            max_vm: 4,
            max_sl: 4,
            ..CherryPick::default()
        };
        let a = cp.search(&env, &q, 7).unwrap();
        let b = cp.search(&env, &q, 7).unwrap();
        assert_eq!(a.allocation, b.allocation);
        assert_eq!(a.probes, b.probes);
    }
}
