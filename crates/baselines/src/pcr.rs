//! The performance–cost ratio of Equation 3 (§3.2):
//!
//! ```text
//! PCr = (1 / Time) / (1 + cost)
//! ```
//!
//! where *Time* is the decision's inference latency and *cost* the compute
//! charges attributable to creating the decision's model (live probing for
//! CherryPick; an amortised share of the training runs for the RF-based
//! approaches).

use smartpick_cloudsim::Money;

/// One search strategy's measured decision characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionMeasurement {
    /// Inference latency, seconds.
    pub time_seconds: f64,
    /// Model-creation charges attributed to the decision.
    pub cost: Money,
}

/// Computes `PCr = (1/Time)/(1 + cost)`.
///
/// # Panics
///
/// Panics if `time_seconds` is not strictly positive.
pub fn performance_cost_ratio(m: &DecisionMeasurement) -> f64 {
    assert!(m.time_seconds > 0.0, "inference time must be positive");
    (1.0 / m.time_seconds) / (1.0 + m.cost.dollars())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn follows_equation_3() {
        let m = DecisionMeasurement {
            time_seconds: 0.5,
            cost: Money::from_dollars(1.0),
        };
        assert!((performance_cost_ratio(&m) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn faster_and_cheaper_is_better() {
        let fast_cheap = DecisionMeasurement {
            time_seconds: 0.01,
            cost: Money::from_dollars(0.04),
        };
        let fast_pricey = DecisionMeasurement {
            time_seconds: 0.01,
            cost: Money::from_dollars(1.2),
        };
        let slow_cheap = DecisionMeasurement {
            time_seconds: 0.2,
            cost: Money::from_dollars(0.04),
        };
        let best = performance_cost_ratio(&fast_cheap);
        assert!(best > performance_cost_ratio(&fast_pricey));
        assert!(best > performance_cost_ratio(&slow_cheap));
    }

    #[test]
    #[should_panic]
    fn zero_time_panics() {
        let _ = performance_cost_ratio(&DecisionMeasurement {
            time_seconds: 0.0,
            cost: Money::ZERO,
        });
    }
}
