//! Provisioning policies for the Figure 5–7 comparisons.
//!
//! Every policy consumes the same external Workload Prediction service
//! (Smartpick's WP module), mirroring §6.3.2: "we tweak our WP module to
//! choose VM instead of SL + VM, and plug-in the module into Cocoa and
//! SplitServe".

use smartpick_cloudsim::SimDuration;
use smartpick_core::wp::{ConstraintMode, PredictionRequest, WorkloadPredictionService};
use smartpick_core::{SmartpickError, WorkloadPredictor};
use smartpick_engine::{Allocation, QueryProfile, RelayPolicy};

/// A compute-provisioning policy: maps a query to an allocation.
pub trait ProvisioningPolicy: std::fmt::Debug {
    /// Display name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Decides the allocation for `query`.
    ///
    /// # Errors
    ///
    /// Returns prediction errors from the underlying WP service.
    fn decide(
        &self,
        wp: &WorkloadPredictor,
        query: &QueryProfile,
        seed: u64,
    ) -> Result<Allocation, SmartpickError>;
}

/// VM-only: the best pure-VM configuration (cold boot and all).
#[derive(Debug, Clone, Copy, Default)]
pub struct VmOnly;

impl ProvisioningPolicy for VmOnly {
    fn name(&self) -> &'static str {
        "VM-only"
    }

    fn decide(
        &self,
        wp: &WorkloadPredictor,
        query: &QueryProfile,
        seed: u64,
    ) -> Result<Allocation, SmartpickError> {
        let det = wp.determine(&PredictionRequest {
            query: query.clone(),
            knob: 0.0,
            constraint: ConstraintMode::VmOnly,
            seed,
        })?;
        Ok(Allocation::vm_only(det.allocation.n_vm))
    }
}

/// SL-only: the best pure-serverless configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlOnly;

impl ProvisioningPolicy for SlOnly {
    fn name(&self) -> &'static str {
        "SL-only"
    }

    fn decide(
        &self,
        wp: &WorkloadPredictor,
        query: &QueryProfile,
        seed: u64,
    ) -> Result<Allocation, SmartpickError> {
        let det = wp.determine(&PredictionRequest {
            query: query.clone(),
            knob: 0.0,
            constraint: ConstraintMode::SlOnly,
            seed,
        })?;
        Ok(Allocation::sl_only(det.allocation.n_sl))
    }
}

/// Smartpick's hybrid determination; `relay` selects Smartpick-r.
#[derive(Debug, Clone, Copy)]
pub struct SmartpickPolicy {
    /// Apply the relay-instances mechanism to hybrid allocations.
    pub relay: bool,
    /// Cost–performance knob ε.
    pub knob: f64,
}

impl SmartpickPolicy {
    /// Plain Smartpick (no relay), best performance.
    pub fn plain() -> Self {
        SmartpickPolicy {
            relay: false,
            knob: 0.0,
        }
    }

    /// Smartpick-r (relay-instances), best performance.
    pub fn with_relay() -> Self {
        SmartpickPolicy {
            relay: true,
            knob: 0.0,
        }
    }
}

impl ProvisioningPolicy for SmartpickPolicy {
    fn name(&self) -> &'static str {
        if self.relay {
            "Smartpick-r"
        } else {
            "Smartpick"
        }
    }

    fn decide(
        &self,
        wp: &WorkloadPredictor,
        query: &QueryProfile,
        seed: u64,
    ) -> Result<Allocation, SmartpickError> {
        let det = wp.determine(&PredictionRequest {
            query: query.clone(),
            knob: self.knob,
            constraint: ConstraintMode::Hybrid,
            seed,
        })?;
        let mut alloc = det.allocation;
        alloc.relay = if self.relay && alloc.n_vm > 0 && alloc.n_sl > 0 {
            RelayPolicy::Relay
        } else {
            RelayPolicy::None
        };
        Ok(alloc)
    }
}

/// SplitServe (Jain et al., Middleware '20): asks the external WP for the
/// VM count, then launches *the same number* of SLs alongside, each leased
/// for a static segue timeout (§4.3's critique: idle SLs inflate cost).
#[derive(Debug, Clone, Copy)]
pub struct SplitServe {
    /// The static serverless lease (their segueing threshold).
    pub segue_timeout: SimDuration,
    /// Cost–performance knob forwarded to the external WP (Figure 8 shows
    /// SplitServe benefiting from Smartpick's knob).
    pub knob: f64,
}

impl Default for SplitServe {
    fn default() -> Self {
        SplitServe {
            segue_timeout: SimDuration::from_secs_f64(90.0),
            knob: 0.0,
        }
    }
}

impl ProvisioningPolicy for SplitServe {
    fn name(&self) -> &'static str {
        "SplitServe"
    }

    fn decide(
        &self,
        wp: &WorkloadPredictor,
        query: &QueryProfile,
        seed: u64,
    ) -> Result<Allocation, SmartpickError> {
        let det = wp.determine(&PredictionRequest {
            query: query.clone(),
            knob: 0.0,
            constraint: ConstraintMode::VmOnly,
            seed,
        })?;
        // SplitServe has no estimated-times list of its own, so the knob
        // acts as the paper's *simple* proportional scale-down (§3.3:
        // "setting the ε value to 0.5 halves the numbers of SL and VM
        // instances"), which is how Figure 8(b) lets SplitServe explore
        // the tradeoff space.
        let n = det.allocation.n_vm.max(1);
        let scale = (1.0 - self.knob).clamp(0.2, 1.0);
        let n = ((n as f64 * scale).round() as u32).max(1);
        Ok(Allocation::new(n, n).with_relay(RelayPolicy::Segue {
            timeout: self.segue_timeout,
        }))
    }
}

/// Cocoa (Oh & Song, IC2E '21): sizes the cluster from *static* per-task
/// execution-time parameters and favours serverless capacity, keeping SLs
/// deployed for the whole query (§6.3.2: "Cocoa tends to always favor SLs
/// because of its dependency on other simply assumed static values").
#[derive(Debug, Clone, Copy)]
pub struct Cocoa {
    /// The assumed (static) seconds per map/shuffle task.
    pub static_task_secs: f64,
    /// Fraction of capacity provisioned as serverless.
    pub sl_fraction: f64,
}

impl Default for Cocoa {
    fn default() -> Self {
        Cocoa {
            static_task_secs: 6.0,
            sl_fraction: 0.8,
        }
    }
}

impl ProvisioningPolicy for Cocoa {
    fn name(&self) -> &'static str {
        "Cocoa"
    }

    fn decide(
        &self,
        wp: &WorkloadPredictor,
        query: &QueryProfile,
        seed: u64,
    ) -> Result<Allocation, SmartpickError> {
        // Target completion time comes from the external WP (VM-tweaked).
        let det = wp.determine(&PredictionRequest {
            query: query.clone(),
            knob: 0.0,
            constraint: ConstraintMode::VmOnly,
            seed,
        })?;
        let target_secs = det.predicted_seconds.max(1.0);
        let slots_per_instance = wp.env().catalog().worker_vm().slots() as f64;
        // Static work estimate: every task takes `static_task_secs`.
        let work = query.total_tasks() as f64 * self.static_task_secs;
        let instances = (work / (target_secs * slots_per_instance)).ceil().max(1.0) as u32;
        let n_sl = ((instances as f64) * self.sl_fraction).ceil() as u32;
        let n_vm = instances.saturating_sub(n_sl);
        Ok(Allocation::new(n_vm, n_sl))
    }
}

/// Looks a policy up by its display name (harness convenience).
pub fn policy_by_name(name: &str) -> Option<Box<dyn ProvisioningPolicy>> {
    match name {
        "VM-only" => Some(Box::new(VmOnly)),
        "SL-only" => Some(Box::new(SlOnly)),
        "Smartpick" => Some(Box::new(SmartpickPolicy::plain())),
        "Smartpick-r" => Some(Box::new(SmartpickPolicy::with_relay())),
        "SplitServe" => Some(Box::new(SplitServe::default())),
        "Cocoa" => Some(Box::new(Cocoa::default())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartpick_cloudsim::{CloudEnv, Provider};
    use smartpick_core::training::{train_predictor, TrainOptions};
    use smartpick_ml::forest::ForestParams;
    use smartpick_workloads::tpcds;

    fn predictor() -> WorkloadPredictor {
        let env = CloudEnv::new(Provider::Aws);
        let queries: Vec<_> = [82u32, 68]
            .iter()
            .map(|&q| tpcds::query(q, 100.0).unwrap())
            .collect();
        let opts = TrainOptions {
            configs_per_query: 6,
            burst_factor: 3,
            forest: ForestParams {
                n_trees: 20,
                ..ForestParams::default()
            },
            max_vm: 6,
            max_sl: 6,
            ..TrainOptions::default()
        };
        train_predictor(&env, &queries, &opts, 17).unwrap().0
    }

    #[test]
    fn extremes_produce_pure_allocations() {
        let wp = predictor();
        let q = tpcds::query(82, 100.0).unwrap();
        let vm = VmOnly.decide(&wp, &q, 1).unwrap();
        assert_eq!(vm.n_sl, 0);
        assert!(vm.n_vm > 0);
        let sl = SlOnly.decide(&wp, &q, 1).unwrap();
        assert_eq!(sl.n_vm, 0);
        assert!(sl.n_sl > 0);
    }

    #[test]
    fn splitserve_uses_equal_counts_with_segue() {
        let wp = predictor();
        let q = tpcds::query(68, 100.0).unwrap();
        let a = SplitServe::default().decide(&wp, &q, 2).unwrap();
        assert_eq!(a.n_vm, a.n_sl);
        assert!(matches!(a.relay, RelayPolicy::Segue { .. }));
    }

    #[test]
    fn cocoa_favours_serverless() {
        let wp = predictor();
        let q = tpcds::query(68, 100.0).unwrap();
        let a = Cocoa::default().decide(&wp, &q, 3).unwrap();
        assert!(a.n_sl >= a.n_vm, "Cocoa should be SL-heavy: {a}");
        assert_eq!(a.relay, RelayPolicy::None, "Cocoa has no relaying");
    }

    #[test]
    fn smartpick_relay_flag_controls_policy() {
        let wp = predictor();
        let q = tpcds::query(68, 100.0).unwrap();
        let plain = SmartpickPolicy::plain().decide(&wp, &q, 4).unwrap();
        assert_eq!(plain.relay, RelayPolicy::None);
        let relay = SmartpickPolicy::with_relay().decide(&wp, &q, 4).unwrap();
        if relay.n_vm > 0 && relay.n_sl > 0 {
            assert_eq!(relay.relay, RelayPolicy::Relay);
        }
    }

    #[test]
    fn lookup_by_name() {
        for name in [
            "VM-only",
            "SL-only",
            "Smartpick",
            "Smartpick-r",
            "SplitServe",
            "Cocoa",
        ] {
            assert!(policy_by_name(name).is_some(), "{name}");
        }
        assert!(policy_by_name("nonesuch").is_none());
    }
}
