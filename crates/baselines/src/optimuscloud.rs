//! OptimusCloud-style search: Random-Forest prediction with an
//! **exhaustive** configuration sweep (Mahgoub et al., ATC '20).
//!
//! OptimusCloud learns a performance model (no live probing cost) but
//! scans every candidate configuration through it. On the hybrid SL+VM
//! space this is the "huge search space" §3.2 blames for its poor
//! performance–cost ratio.

use std::time::Instant;

use smartpick_cloudsim::Money;
use smartpick_core::{SmartpickError, WorkloadPredictor};
use smartpick_engine::{Allocation, QueryProfile};

/// Outcome of one OptimusCloud decision.
#[derive(Debug, Clone)]
pub struct OptimusCloudOutcome {
    /// The configuration it settled on.
    pub allocation: Allocation,
    /// Predicted completion time for it, seconds.
    pub best_seconds: f64,
    /// Wall-clock of the exhaustive sweep (inference latency).
    pub wall_seconds: f64,
    /// Model evaluations performed (the whole grid).
    pub evaluations: usize,
    /// Amortised model-creation cost attributed to this decision.
    pub model_cost: Money,
}

/// The OptimusCloud baseline.
#[derive(Debug, Clone)]
pub struct OptimusCloud {
    /// Inclusive `{nVM, nSL}` grid bound.
    pub max_vm: u32,
    /// Inclusive grid bound for SLs.
    pub max_sl: u32,
    /// Amortised per-decision share of the training-run charges (shared
    /// with Smartpick, which trains on the same runs).
    pub amortised_training_cost: Money,
}

impl Default for OptimusCloud {
    fn default() -> Self {
        OptimusCloud {
            max_vm: 10,
            max_sl: 10,
            amortised_training_cost: Money::from_dollars(0.04),
        }
    }
}

impl OptimusCloud {
    /// Exhaustively scans the grid through the learned model.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors (e.g. unknown query).
    pub fn search(
        &self,
        wp: &WorkloadPredictor,
        query: &QueryProfile,
    ) -> Result<OptimusCloudOutcome, SmartpickError> {
        let started = Instant::now();
        let mut best: Option<(Allocation, f64)> = None;
        let mut evaluations = 0usize;
        for n_vm in 0..=self.max_vm {
            for n_sl in 0..=self.max_sl {
                if n_vm + n_sl == 0 {
                    continue;
                }
                let alloc = Allocation::new(n_vm, n_sl);
                let secs = wp.predict_seconds(query, &alloc)?;
                evaluations += 1;
                if best.as_ref().is_none_or(|(_, b)| secs < *b) {
                    best = Some((alloc, secs));
                }
            }
        }
        let (allocation, best_seconds) = best.expect("grid is non-empty");
        Ok(OptimusCloudOutcome {
            allocation,
            best_seconds,
            wall_seconds: started.elapsed().as_secs_f64(),
            evaluations,
            model_cost: self.amortised_training_cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartpick_cloudsim::{CloudEnv, Provider};
    use smartpick_core::training::{train_predictor, TrainOptions};
    use smartpick_ml::forest::ForestParams;
    use smartpick_workloads::tpcds;

    fn predictor() -> WorkloadPredictor {
        let env = CloudEnv::new(Provider::Aws);
        let queries = vec![tpcds::query(82, 100.0).unwrap()];
        let opts = TrainOptions {
            configs_per_query: 6,
            burst_factor: 3,
            forest: ForestParams {
                n_trees: 20,
                ..ForestParams::default()
            },
            max_vm: 6,
            max_sl: 6,
            ..TrainOptions::default()
        };
        train_predictor(&env, &queries, &opts, 23).unwrap().0
    }

    #[test]
    fn sweeps_the_whole_grid() {
        let wp = predictor();
        let q = tpcds::query(82, 100.0).unwrap();
        let oc = OptimusCloud {
            max_vm: 6,
            max_sl: 6,
            ..OptimusCloud::default()
        };
        let out = oc.search(&wp, &q).unwrap();
        assert_eq!(out.evaluations, 7 * 7 - 1);
        assert!(out.allocation.is_viable());
        assert!(out.best_seconds > 0.0);
    }

    #[test]
    fn unknown_query_errors() {
        let wp = predictor();
        let mut q = tpcds::query(82, 100.0).unwrap();
        q.id = "mystery".into();
        q.sql = String::new();
        // No SQL and unknown id: the similarity checker still matches the
        // registered q82 signature via map tasks, so use an empty-profile
        // query to force the error path instead.
        q.stages.clear();
        let oc = OptimusCloud::default();
        // An empty query cannot crash the sweep; prediction itself works
        // through the similarity fallback or errors cleanly.
        let result = oc.search(&wp, &q);
        match result {
            Ok(out) => assert!(out.allocation.is_viable()),
            Err(SmartpickError::UnknownQuery(_)) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
    }
}
