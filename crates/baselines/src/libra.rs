//! LIBRA-style provisioning (Raza et al., IC2E '21): split capacity at the
//! **cost-indifference point** between serverless and VM resources.
//!
//! LIBRA serves the sustained part of a workload with VMs (cheaper per
//! unit time once booted) and the transient part with serverless (no
//! boot, higher unit price). For a finite query, the natural reading is:
//! capacity needed only during the VM cold-boot window goes serverless;
//! steady capacity goes to VMs. The paper notes (§7) that LIBRA's actual
//! costs drift with the accuracy of the estimated completion time — which
//! is exactly where Smartpick's predictor helps.

use smartpick_cloudsim::boot::PLANNING_VM_BOOT_SECS;
use smartpick_core::wp::{ConstraintMode, PredictionRequest, WorkloadPredictionService};
use smartpick_core::{SmartpickError, WorkloadPredictor};
use smartpick_engine::{Allocation, QueryProfile};

use crate::policies::ProvisioningPolicy;

/// The LIBRA baseline.
#[derive(Debug, Clone, Copy)]
pub struct Libra {
    /// VM cold-boot seconds assumed for the indifference computation.
    pub boot_secs: f64,
}

impl Default for Libra {
    fn default() -> Self {
        Libra {
            boot_secs: PLANNING_VM_BOOT_SECS,
        }
    }
}

impl ProvisioningPolicy for Libra {
    fn name(&self) -> &'static str {
        "LIBRA"
    }

    fn decide(
        &self,
        wp: &WorkloadPredictor,
        query: &QueryProfile,
        seed: u64,
    ) -> Result<Allocation, SmartpickError> {
        // Capacity estimate from the external WP's best hybrid search.
        let det = wp.determine(&PredictionRequest {
            query: query.clone(),
            knob: 0.0,
            constraint: ConstraintMode::Hybrid,
            seed,
        })?;
        let total = det.allocation.total_instances().max(1);
        let est_secs = det.predicted_seconds.max(1.0);
        // The boot window's share of the query is transient → serverless.
        let transient_frac = (self.boot_secs / est_secs).clamp(0.0, 1.0);
        let n_sl = ((total as f64) * transient_frac).round() as u32;
        let n_vm = total - n_sl.min(total);
        Ok(Allocation::new(n_vm.max(1), n_sl))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartpick_cloudsim::{CloudEnv, Provider};
    use smartpick_core::training::{train_predictor, TrainOptions};
    use smartpick_ml::forest::ForestParams;
    use smartpick_workloads::tpcds;

    fn predictor() -> WorkloadPredictor {
        let env = CloudEnv::new(Provider::Aws);
        let queries: Vec<_> = [82u32, 74]
            .iter()
            .map(|&q| tpcds::query(q, 100.0).unwrap())
            .collect();
        let opts = TrainOptions {
            configs_per_query: 6,
            burst_factor: 3,
            forest: ForestParams {
                n_trees: 20,
                ..ForestParams::default()
            },
            max_vm: 6,
            max_sl: 6,
            ..TrainOptions::default()
        };
        train_predictor(&env, &queries, &opts, 31).unwrap().0
    }

    #[test]
    fn longer_queries_get_proportionally_fewer_sls() {
        let wp = predictor();
        let libra = Libra::default();
        let short = libra
            .decide(&wp, &tpcds::query(82, 100.0).unwrap(), 1)
            .unwrap();
        let long = libra
            .decide(&wp, &tpcds::query(74, 100.0).unwrap(), 1)
            .unwrap();
        let frac = |a: &Allocation| a.n_sl as f64 / a.total_instances() as f64;
        assert!(
            frac(&long) <= frac(&short) + 1e-9,
            "short {short} vs long {long}"
        );
        assert!(long.n_vm >= 1);
    }
}
