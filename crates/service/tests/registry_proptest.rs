//! Property test for the sharded tenant registry: concurrent
//! register/predict/report from 8 threads across 64 tenants never loses
//! an update and never panics.
//!
//! Each case draws one RNG seed per thread; threads derive their own op
//! streams from it. After joining and flushing, the service's counters
//! must exactly equal the per-thread success tallies — an accepted
//! report that never gets applied, a double-registered tenant, or a
//! dropped prediction count all falsify the property.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smartpick_cloudsim::{CloudEnv, Provider};
use smartpick_core::driver::Smartpick;
use smartpick_core::properties::SmartpickProperties;
use smartpick_core::training::TrainOptions;
use smartpick_core::wp::PredictionRequest;
use smartpick_ml::forest::ForestParams;
use smartpick_service::{CompletedRun, ServiceConfig, ServiceError, SmartpickService};
use smartpick_workloads::tpcds;

const THREADS: usize = 8;
const TENANTS: u64 = 64;
const OPS_PER_THREAD: usize = 24;

/// One trained template shared by every case (tenants are cheap forks).
fn template() -> &'static Smartpick {
    static TEMPLATE: OnceLock<Smartpick> = OnceLock::new();
    TEMPLATE.get_or_init(|| {
        let queries = vec![tpcds::query(82, 100.0).unwrap()];
        let opts = TrainOptions {
            configs_per_query: 5,
            burst_factor: 3,
            forest: ForestParams {
                n_trees: 10,
                ..ForestParams::default()
            },
            max_vm: 3,
            max_sl: 3,
            ..TrainOptions::default()
        };
        Smartpick::train_with_options(
            CloudEnv::new(Provider::Aws),
            SmartpickProperties::default(),
            &queries,
            &opts,
            11,
        )
        .unwrap()
        .0
    })
}

/// A canned (query, determination, report) triple for report ops.
fn canned_run() -> &'static CompletedRun {
    static RUN: OnceLock<CompletedRun> = OnceLock::new();
    RUN.get_or_init(|| {
        let tpl = template();
        let query = tpcds::query(82, 100.0).unwrap();
        use smartpick_core::wp::WorkloadPredictionService;
        let determination = tpl
            .snapshot()
            .determine(&PredictionRequest::new(query.clone(), 17))
            .unwrap();
        let report = tpl
            .shared_resource_manager()
            .execute(&query, &determination.allocation, 23)
            .unwrap();
        CompletedRun {
            query,
            determination,
            report,
        }
    })
}

#[derive(Default)]
struct Tally {
    registers: AtomicU64,
    predicts: AtomicU64,
    reports: AtomicU64,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn concurrent_registry_ops_lose_nothing(seeds in prop::collection::vec(0u64..u64::MAX, THREADS)) {
        let service = Arc::new(SmartpickService::new(ServiceConfig {
            shards: 8,
            queue_capacity: 4096,
            tenant_pending_cap: 4096,
            retrain_batch_max: 16,
        }));
        let tally = Arc::new(Tally::default());

        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let service = Arc::clone(&service);
                let tally = Arc::clone(&tally);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed);
                    for _ in 0..OPS_PER_THREAD {
                        let tenant = format!("tenant-{}", rng.gen_range(0..TENANTS));
                        match rng.gen_range(0u8..3) {
                            0 => match service.register_fork(&tenant, template(), rng.gen()) {
                                Ok(()) => {
                                    tally.registers.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(ServiceError::TenantExists(_)) => {}
                                Err(other) => panic!("register: {other}"),
                            },
                            1 => {
                                let query = tpcds::query(82, 100.0).unwrap();
                                match service
                                    .predict(&tenant, &PredictionRequest::new(query, rng.gen()))
                                {
                                    Ok(det) => {
                                        assert!(det.predicted_seconds.is_finite());
                                        tally.predicts.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Err(ServiceError::UnknownTenant(_)) => {}
                                    Err(other) => panic!("predict: {other}"),
                                }
                            }
                            _ => match service.report_run(&tenant, canned_run().clone()) {
                                Ok(()) => {
                                    tally.reports.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(ServiceError::UnknownTenant(_)) => {}
                                Err(other) => panic!("report: {other}"),
                            },
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("no thread may panic");
        }

        prop_assert!(service.flush());
        let stats = service.stats();
        // Never loses an update: every success tallied by a client is
        // visible in the service's books, exactly once.
        prop_assert_eq!(stats.tenants as u64, tally.registers.load(Ordering::Relaxed));
        prop_assert_eq!(stats.predictions, tally.predicts.load(Ordering::Relaxed));
        prop_assert_eq!(stats.reports_enqueued, tally.reports.load(Ordering::Relaxed));
        prop_assert_eq!(stats.reports_applied, tally.reports.load(Ordering::Relaxed));
        prop_assert_eq!(stats.apply_failures, 0);
        prop_assert_eq!(stats.rejections, 0);
        prop_assert_eq!(stats.queue_depth, 0);
        // And every registered tenant is still resolvable.
        for id in service.tenants() {
            let ts = service.tenant_stats(&id).map_err(|e| {
                proptest::TestCaseError::fail(format!("lost tenant {id}: {e}"))
            })?;
            prop_assert_eq!(ts.pending_reports, 0);
        }
    }
}
