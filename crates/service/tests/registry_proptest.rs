//! Property tests for the sharded tenant registry and the sharded
//! retrain workers.
//!
//! `concurrent_registry_ops_lose_nothing`: concurrent
//! register/predict/report from 8 threads across 64 tenants never loses
//! an update and never panics. Each case draws one RNG seed per thread;
//! threads derive their own op streams from it. After joining and
//! flushing, the service's counters must exactly equal the per-thread
//! success tallies — an accepted report that never gets applied, a
//! double-registered tenant, or a dropped prediction count all falsify
//! the property.
//!
//! `sharded_workers_preserve_per_tenant_report_order`: with 4 retrain
//! workers, reports for distinct tenants are applied by distinct
//! workers (visible in the per-shard stats) while each tenant's reports
//! are applied in exactly the order its producer enqueued them (visible
//! in the tenant driver's history).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smartpick_cloudsim::{CloudEnv, Provider};
use smartpick_core::driver::Smartpick;
use smartpick_core::properties::SmartpickProperties;
use smartpick_core::training::TrainOptions;
use smartpick_core::wp::PredictionRequest;
use smartpick_ml::forest::ForestParams;
use smartpick_service::{CompletedRun, ServiceConfig, ServiceError, SmartpickService};
use smartpick_workloads::tpcds;

const THREADS: usize = 8;
const TENANTS: u64 = 64;
const OPS_PER_THREAD: usize = 24;

/// One trained template shared by every case (tenants are cheap forks).
fn template() -> &'static Smartpick {
    static TEMPLATE: OnceLock<Smartpick> = OnceLock::new();
    TEMPLATE.get_or_init(|| {
        let queries = vec![tpcds::query(82, 100.0).unwrap()];
        let opts = TrainOptions {
            configs_per_query: 5,
            burst_factor: 3,
            forest: ForestParams {
                n_trees: 10,
                ..ForestParams::default()
            },
            max_vm: 3,
            max_sl: 3,
            ..TrainOptions::default()
        };
        Smartpick::train_with_options(
            CloudEnv::new(Provider::Aws),
            SmartpickProperties::default(),
            &queries,
            &opts,
            11,
        )
        .unwrap()
        .0
    })
}

/// A canned (query, determination, report) triple for report ops.
fn canned_run() -> &'static CompletedRun {
    static RUN: OnceLock<CompletedRun> = OnceLock::new();
    RUN.get_or_init(|| {
        let tpl = template();
        let query = tpcds::query(82, 100.0).unwrap();
        use smartpick_core::wp::WorkloadPredictionService;
        let determination = tpl
            .snapshot()
            .determine(&PredictionRequest::new(query.clone(), 17))
            .unwrap();
        let report = tpl
            .shared_resource_manager()
            .execute(&query, &determination.allocation, 23)
            .unwrap();
        CompletedRun {
            query,
            determination,
            report,
        }
    })
}

#[derive(Default)]
struct Tally {
    registers: AtomicU64,
    predicts: AtomicU64,
    reports: AtomicU64,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn concurrent_registry_ops_lose_nothing(seeds in prop::collection::vec(0u64..u64::MAX, THREADS)) {
        let service = Arc::new(SmartpickService::new(ServiceConfig {
            shards: 8,
            queue_capacity: 4096,
            tenant_pending_cap: 4096,
            retrain_batch_max: 16,
            retrain_workers: 4,
        ..ServiceConfig::default()
    }));
        let tally = Arc::new(Tally::default());

        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let service = Arc::clone(&service);
                let tally = Arc::clone(&tally);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed);
                    for _ in 0..OPS_PER_THREAD {
                        let tenant = format!("tenant-{}", rng.gen_range(0..TENANTS));
                        match rng.gen_range(0u8..3) {
                            0 => match service.register_fork(&tenant, template(), rng.gen()) {
                                Ok(()) => {
                                    tally.registers.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(ServiceError::TenantExists(_)) => {}
                                Err(other) => panic!("register: {other}"),
                            },
                            1 => {
                                let query = tpcds::query(82, 100.0).unwrap();
                                match service
                                    .predict(&tenant, &PredictionRequest::new(query, rng.gen()))
                                {
                                    Ok(det) => {
                                        assert!(det.predicted_seconds.is_finite());
                                        tally.predicts.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Err(ServiceError::UnknownTenant(_)) => {}
                                    Err(other) => panic!("predict: {other}"),
                                }
                            }
                            _ => match service.report_run(&tenant, canned_run().clone()) {
                                Ok(()) => {
                                    tally.reports.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(ServiceError::UnknownTenant(_)) => {}
                                Err(other) => panic!("report: {other}"),
                            },
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("no thread may panic");
        }

        prop_assert!(service.flush());
        let stats = service.stats();
        // Never loses an update: every success tallied by a client is
        // visible in the service's books, exactly once.
        prop_assert_eq!(stats.tenants as u64, tally.registers.load(Ordering::Relaxed));
        prop_assert_eq!(stats.predictions, tally.predicts.load(Ordering::Relaxed));
        prop_assert_eq!(stats.reports_enqueued, tally.reports.load(Ordering::Relaxed));
        prop_assert_eq!(stats.reports_applied, tally.reports.load(Ordering::Relaxed));
        prop_assert_eq!(stats.apply_failures, 0);
        prop_assert_eq!(stats.rejections, 0);
        prop_assert_eq!(stats.queue_depth, 0);
        // And every registered tenant is still resolvable.
        for id in service.tenants() {
            let ts = service.tenant_stats(&id).map_err(|e| {
                proptest::TestCaseError::fail(format!("lost tenant {id}: {e}"))
            })?;
            prop_assert_eq!(ts.pending_reports, 0);
        }
    }

    #[test]
    fn sharded_workers_preserve_per_tenant_report_order(
        offsets in prop::collection::vec(0u64..1000, THREADS),
    ) {
        const WORKERS: usize = 4;
        const TENANTS_PER_THREAD: usize = 2;
        const REPORTS_PER_TENANT: usize = 12;

        let service = Arc::new(SmartpickService::new(ServiceConfig {
            shards: 8,
            queue_capacity: 4096,
            tenant_pending_cap: 4096,
            retrain_batch_max: 4,
            retrain_workers: WORKERS,
        ..ServiceConfig::default()
    }));
        // Each thread owns disjoint tenants, so per-tenant enqueue order
        // is well defined; the worker must never reorder it.
        for t in 0..THREADS {
            for k in 0..TENANTS_PER_THREAD {
                let tenant = format!("tenant-{t}-{k}");
                service.register_fork(&tenant, template(), (t * 31 + k) as u64).unwrap();
            }
        }
        let base = canned_run();
        let predicted = base.determination.predicted_seconds;

        let handles: Vec<_> = offsets
            .iter()
            .enumerate()
            .map(|(t, &offset)| {
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    // Interleave the thread's tenants so their sequences
                    // are in flight concurrently, not back to back.
                    for seq in 0..REPORTS_PER_TENANT {
                        for k in 0..TENANTS_PER_THREAD {
                            let tenant = format!("tenant-{t}-{k}");
                            let mut run = canned_run().clone();
                            // Stamp the sequence number into the runtime
                            // (millisecond steps: far below the 50 s
                            // retrain trigger, so applies stay cheap, but
                            // exactly recoverable from the history).
                            run.report.completion =
                                smartpick_cloudsim::SimDuration::from_secs_f64(
                                    predicted + (offset as f64) * 1e-6 + (seq as f64) * 1e-3,
                                );
                            service.report_run(&tenant, run).unwrap();
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("no producer thread may panic");
        }
        prop_assert!(service.flush());

        // Per-tenant ordering: the history must hold every report, in
        // exactly the enqueued sequence.
        for t in 0..THREADS {
            for k in 0..TENANTS_PER_THREAD {
                let tenant = format!("tenant-{t}-{k}");
                let seconds: Vec<f64> = service
                    .inspect_tenant(&tenant, |driver| {
                        driver
                            .history()
                            .snapshot()
                            .iter()
                            .map(|r| r.actual_seconds)
                            .collect()
                    })
                    .unwrap();
                prop_assert_eq!(seconds.len(), REPORTS_PER_TENANT);
                for (seq, window) in seconds.windows(2).enumerate() {
                    prop_assert!(
                        window[0] < window[1],
                        "tenant {} applied out of order at seq {}: {:?}",
                        tenant, seq, seconds
                    );
                }
            }
        }

        // Distinct tenants really were applied by distinct workers, and
        // the per-shard books add up.
        let stats = service.stats();
        let applied: Vec<u64> = stats.worker_shards.iter().map(|s| s.reports_applied).collect();
        prop_assert_eq!(applied.len(), WORKERS);
        prop_assert_eq!(
            applied.iter().sum::<u64>(),
            (THREADS * TENANTS_PER_THREAD * REPORTS_PER_TENANT) as u64
        );
        prop_assert!(
            applied.iter().filter(|&&a| a > 0).count() >= 2,
            "16 tenants over 4 worker shards must exercise at least two: {:?}",
            applied
        );
        // Every tenant's advertised shard matches a worker that did work.
        for id in service.tenants() {
            let ts = service.tenant_stats(&id).unwrap();
            prop_assert!(ts.worker_shard < WORKERS);
            prop_assert!(applied[ts.worker_shard] > 0);
            prop_assert_eq!(ts.reports_applied, REPORTS_PER_TENANT as u64);
        }
    }
}
