//! Property tests for tiered residency: random interleavings of
//! {predict, report, evict, rehydrate, deregister, re-register} on one
//! tenant id, from several threads at once.
//!
//! `evict_rehydrate_interleavings_keep_generation_monotone`: with the
//! tenant permanently registered, threads race predicts, reports,
//! flushes and evictions (every resolve of a cold tenant is an implicit
//! rehydration). No accepted report may be lost to an eviction
//! (accept-then-retire is backed out and retried), and the snapshot
//! generation a thread observes never decreases — rehydration restores
//! the floor, it never rolls back.
//!
//! `full_lifecycle_interleavings_leave_no_ghosts`: deregister and
//! re-register join the mix. Whatever the interleaving, the books
//! balance (every accepted report is applied, even those in flight when
//! their tenant was deregistered), the store directory exists exactly
//! when the tenant is registered, and a reopen agrees with the final
//! in-memory registry — no ghost directories, no resurrections.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smartpick_cloudsim::{CloudEnv, Provider};
use smartpick_core::driver::Smartpick;
use smartpick_core::properties::SmartpickProperties;
use smartpick_core::training::TrainOptions;
use smartpick_core::wp::PredictionRequest;
use smartpick_ml::forest::ForestParams;
use smartpick_service::{
    CompletedRun, PersistenceConfig, ServiceConfig, ServiceError, SmartpickService,
};
use smartpick_workloads::tpcds;

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 16;
const TENANT: &str = "solo";

/// One trained template shared by every case (tenants are cheap forks).
fn template() -> &'static Smartpick {
    static TEMPLATE: OnceLock<Smartpick> = OnceLock::new();
    TEMPLATE.get_or_init(|| {
        let queries = vec![tpcds::query(82, 100.0).unwrap()];
        let opts = TrainOptions {
            configs_per_query: 5,
            burst_factor: 3,
            forest: ForestParams {
                n_trees: 10,
                ..ForestParams::default()
            },
            max_vm: 3,
            max_sl: 3,
            ..TrainOptions::default()
        };
        Smartpick::train_with_options(
            CloudEnv::new(Provider::Aws),
            SmartpickProperties::default(),
            &queries,
            &opts,
            11,
        )
        .unwrap()
        .0
    })
}

/// A canned (query, determination, report) triple for report ops.
fn canned_run() -> &'static CompletedRun {
    static RUN: OnceLock<CompletedRun> = OnceLock::new();
    RUN.get_or_init(|| {
        let tpl = template();
        let query = tpcds::query(82, 100.0).unwrap();
        use smartpick_core::wp::WorkloadPredictionService;
        let determination = tpl
            .snapshot()
            .determine(&PredictionRequest::new(query.clone(), 17))
            .unwrap();
        let report = tpl
            .shared_resource_manager()
            .execute(&query, &determination.allocation, 23)
            .unwrap();
        CompletedRun {
            query,
            determination,
            report,
        }
    })
}

/// A fresh store root per proptest case, inside the repo's `target/`.
fn case_root(tag: &str) -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/tmp"))
        .join(format!("residency-prop-{tag}-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_config(dir: &Path) -> ServiceConfig {
    ServiceConfig {
        shards: 4,
        queue_capacity: 4096,
        tenant_pending_cap: 4096,
        retrain_batch_max: 8,
        retrain_workers: 2,
        supervisor_poll: Duration::from_millis(5),
        persistence: Some(PersistenceConfig {
            snapshot_every: u64::MAX,
            ..PersistenceConfig::at(dir)
        }),
        ..ServiceConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn evict_rehydrate_interleavings_keep_generation_monotone(
        seeds in prop::collection::vec(0u64..u64::MAX, THREADS),
    ) {
        let dir = case_root("monotone");
        let service = Arc::new(SmartpickService::open(&dir, durable_config(&dir)).unwrap());
        service.register_fork(TENANT, template(), 7).unwrap();
        let accepted = Arc::new(AtomicU64::new(0));

        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let service = Arc::clone(&service);
                let accepted = Arc::clone(&accepted);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let mut last_generation = 0u64;
                    for _ in 0..OPS_PER_THREAD {
                        match rng.gen_range(0u8..6) {
                            0 | 1 => {
                                let query = tpcds::query(82, 100.0).unwrap();
                                let det = service
                                    .predict(TENANT, &PredictionRequest::new(query, rng.gen()))
                                    .expect("tenant is never deregistered");
                                assert!(det.predicted_seconds.is_finite());
                            }
                            2 | 3 => {
                                service
                                    .report_run(TENANT, canned_run().clone())
                                    .expect("report on a live tenant");
                                accepted.fetch_add(1, Ordering::Relaxed);
                            }
                            4 => {
                                // May refuse (pending reports pin it hot)
                                // or miss (already cold): both are fine.
                                let _ = service.evict_tenant(TENANT).unwrap();
                            }
                            _ => {
                                assert!(service.flush());
                            }
                        }
                        // The stats resolve rehydrates a cold tenant; the
                        // generation this thread observes must never go
                        // backwards — an eviction/rehydration cycle that
                        // lost a publish would show here.
                        let generation =
                            service.tenant_stats(TENANT).unwrap().snapshot_generation;
                        assert!(
                            generation >= last_generation,
                            "generation rolled back: {generation} < {last_generation}"
                        );
                        last_generation = generation;
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("no thread may panic");
        }

        prop_assert!(service.flush());
        let stats = service.stats();
        prop_assert_eq!(stats.reports_enqueued, accepted.load(Ordering::Relaxed));
        prop_assert_eq!(stats.reports_applied, accepted.load(Ordering::Relaxed));
        prop_assert_eq!(stats.apply_failures, 0);
        prop_assert_eq!(stats.rejections, 0);
        prop_assert_eq!(stats.queue_depth, 0);
        prop_assert_eq!(service.tenant_stats(TENANT).unwrap().pending_reports, 0);
    }

    #[test]
    fn full_lifecycle_interleavings_leave_no_ghosts(
        seeds in prop::collection::vec(0u64..u64::MAX, THREADS),
    ) {
        let dir = case_root("lifecycle");
        let service = Arc::new(SmartpickService::open(&dir, durable_config(&dir)).unwrap());
        service.register_fork(TENANT, template(), 7).unwrap();
        let accepted = Arc::new(AtomicU64::new(0));

        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let service = Arc::clone(&service);
                let accepted = Arc::clone(&accepted);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed);
                    for _ in 0..OPS_PER_THREAD {
                        match rng.gen_range(0u8..8) {
                            0 => match service.register_fork(TENANT, template(), rng.gen()) {
                                Ok(()) | Err(ServiceError::TenantExists(_)) => {}
                                Err(other) => panic!("register: {other}"),
                            },
                            1 | 2 => {
                                let query = tpcds::query(82, 100.0).unwrap();
                                match service
                                    .predict(TENANT, &PredictionRequest::new(query, rng.gen()))
                                {
                                    Ok(det) => assert!(det.predicted_seconds.is_finite()),
                                    Err(ServiceError::UnknownTenant(_)) => {}
                                    Err(other) => panic!("predict: {other}"),
                                }
                            }
                            3..=5 => match service.report_run(TENANT, canned_run().clone()) {
                                Ok(()) => {
                                    accepted.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(ServiceError::UnknownTenant(_)) => {}
                                Err(other) => panic!("report: {other}"),
                            },
                            6 => match service.evict_tenant(TENANT) {
                                Ok(_) | Err(ServiceError::UnknownTenant(_)) => {}
                                Err(other) => panic!("evict: {other}"),
                            },
                            _ => match service.deregister_tenant(TENANT) {
                                Ok(()) | Err(ServiceError::UnknownTenant(_)) => {}
                                Err(other) => panic!("deregister: {other}"),
                            },
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("no thread may panic");
        }

        prop_assert!(service.flush());
        // Every accepted report was applied — including those in flight
        // when their registration was torn down or its tenant evicted.
        let stats = service.stats();
        prop_assert_eq!(stats.reports_enqueued, accepted.load(Ordering::Relaxed));
        prop_assert_eq!(stats.reports_applied, accepted.load(Ordering::Relaxed));
        prop_assert_eq!(stats.apply_failures, 0);
        prop_assert_eq!(stats.queue_depth, 0);

        // The store directory exists exactly when the tenant is
        // registered: no ghost directories after a deregistration, no
        // missing state for a survivor.
        let registered = service.tenants();
        let tenant_dir = dir.join("tenants").join(TENANT);
        if registered.is_empty() {
            prop_assert!(
                !tenant_dir.exists(),
                "ghost directory survived deregistration"
            );
        } else {
            prop_assert_eq!(&registered, &vec![TENANT.to_string()]);
            prop_assert!(tenant_dir.exists(), "registered tenant lost its directory");
        }

        // A reopen agrees with the final registry — nothing resurrects,
        // nothing vanishes, and a surviving tenant still serves.
        drop(service);
        let reopened = SmartpickService::open(&dir, durable_config(&dir)).unwrap();
        prop_assert_eq!(reopened.tenants(), registered.clone());
        if !registered.is_empty() {
            let query = tpcds::query(82, 100.0).unwrap();
            let det = reopened
                .predict(TENANT, &PredictionRequest::new(query, 5))
                .unwrap();
            prop_assert!(det.predicted_seconds.is_finite());
        }
    }
}
