//! Tiered residency, end to end through the service: eviction bounds the
//! resident set, a cold hit rehydrates transparently and predicts
//! **bitwise-identically** to a never-evicted twin, pending reports pin a
//! tenant hot, rehydration is single-flight, and — the headline
//! regression — a tenant deregistered mid-retrain-batch stays gone across
//! a reopen (no ghost resurrection by the worker's snapshot persist).

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use smartpick_cloudsim::{CloudEnv, Provider};
use smartpick_core::driver::Smartpick;
use smartpick_core::properties::SmartpickProperties;
use smartpick_core::training::TrainOptions;
use smartpick_core::{ConstraintMode, PredictionRequest};
use smartpick_ml::forest::ForestParams;
use smartpick_obs::EventKind;
use smartpick_service::{
    CompletedRun, PersistenceConfig, ServiceConfig, ServiceError, SmartpickService,
};
use smartpick_workloads::tpcds;

/// A store root inside the repo's own `target/` (tests must not touch
/// paths outside the repository).
fn test_root(tag: &str) -> PathBuf {
    let dir = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/tmp"))
        .join(format!("residency-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic small trained driver — same recipe, same seed, so two
/// calls yield bit-identical drivers.
fn template() -> Smartpick {
    let queries = vec![tpcds::query(82, 100.0).unwrap()];
    let opts = TrainOptions {
        configs_per_query: 5,
        burst_factor: 3,
        forest: ForestParams {
            n_trees: 10,
            ..ForestParams::default()
        },
        max_vm: 3,
        max_sl: 3,
        ..TrainOptions::default()
    };
    Smartpick::train_with_options(
        CloudEnv::new(Provider::Aws),
        SmartpickProperties::default(),
        &queries,
        &opts,
        11,
    )
    .unwrap()
    .0
}

fn durable_config(dir: &Path, snapshot_every: u64) -> ServiceConfig {
    ServiceConfig {
        retrain_workers: 1,
        supervisor_poll: Duration::from_millis(5),
        persistence: Some(PersistenceConfig {
            snapshot_every,
            ..PersistenceConfig::at(dir)
        }),
        ..ServiceConfig::default()
    }
}

fn probe(seed: u64) -> PredictionRequest {
    PredictionRequest {
        query: tpcds::query(82, 100.0).unwrap(),
        knob: 0.0,
        constraint: ConstraintMode::Hybrid,
        seed,
    }
}

/// Bit-faithful comparison via `Debug`: f64s render as their shortest
/// round-trip form, so any bit of drift in the rehydrated model shows.
fn assert_same_prediction(a: &SmartpickService, b: &SmartpickService, tenant: &str, seed: u64) {
    let da = a.predict(tenant, &probe(seed)).unwrap();
    let db = b.predict(tenant, &probe(seed)).unwrap();
    assert_eq!(
        format!("{da:?}"),
        format!("{db:?}"),
        "predictions diverged for {tenant} at seed {seed}"
    );
}

/// The acceptance-criterion test: with `max_resident_tenants = 2` and 5
/// registered tenants, the sweep bounds the resident set; every tenant —
/// evicted or not — predicts bitwise-identically to an in-memory twin
/// that never evicts, and the per-tenant counters survive the
/// evict/rehydrate cycle (a cold tenant is indistinguishable from a hot
/// one at every public API, except latency).
#[test]
fn eviction_bounds_residency_and_cold_hits_match_never_evicted_twin() {
    let dir = test_root("twin");
    const TENANTS: usize = 5;
    const MAX_RESIDENT: usize = 2;

    let durable = SmartpickService::open(
        &dir,
        ServiceConfig {
            max_resident_tenants: Some(MAX_RESIDENT),
            ..durable_config(&dir, u64::MAX)
        },
    )
    .unwrap();
    let twin = SmartpickService::new(ServiceConfig {
        retrain_workers: 1,
        supervisor_poll: Duration::from_millis(5),
        ..ServiceConfig::default()
    });
    let tpl = template();
    for i in 0..TENANTS {
        let id = format!("t-{i}");
        durable.register_fork(&id, &tpl, 100 + i as u64).unwrap();
        twin.register_fork(&id, &tpl, 100 + i as u64).unwrap();
    }

    // Give every tenant one applied report, mirrored to the twin, so the
    // evicted state is past its registration snapshot.
    for i in 0..TENANTS {
        let id = format!("t-{i}");
        let query = tpcds::query(82, 100.0).unwrap();
        let outcome = durable.submit(&id, &query, 500 + i as u64).unwrap();
        twin.report_run(
            &id,
            CompletedRun {
                query,
                determination: outcome.determination.clone(),
                report: outcome.report.clone(),
            },
        )
        .unwrap();
    }
    assert!(durable.flush());
    assert!(twin.flush());

    // One sweep takes the resident set down to the cap.
    assert_eq!(durable.resident_tenants(), TENANTS);
    durable.residency_sweep();
    assert!(
        durable.resident_tenants() <= MAX_RESIDENT,
        "sweep left {} tenants resident (cap {MAX_RESIDENT})",
        durable.resident_tenants()
    );
    let metrics = durable.observability().metrics();
    assert_eq!(
        metrics.counter("service.residency.evictions").get(),
        (TENANTS - MAX_RESIDENT) as u64
    );

    // Track one tenant's counter continuity across the cycle: the submit
    // above already counted one prediction.
    let watched = "t-0";
    let before = durable.tenant_stats(watched).unwrap().predictions;

    // Every tenant — whichever ones went cold — serves the exact same
    // bits as the twin. Cold hits rehydrate transparently.
    for i in 0..TENANTS {
        let id = format!("t-{i}");
        for seed in [1u64, 9, 42] {
            assert_same_prediction(&durable, &twin, &id, seed);
        }
    }
    assert_eq!(
        metrics.counter("service.residency.rehydrations").get(),
        (TENANTS - MAX_RESIDENT) as u64
    );

    // Counters survived: tenant_stats and the scrape agree, and the
    // pre-eviction history was not reset by the rehydration.
    let after = durable.tenant_stats(watched).unwrap().predictions;
    assert_eq!(after, before + 3);
    let scrape = durable.scrape(64);
    assert_eq!(
        scrape.counter(&format!("tenant.{watched}.predictions")),
        after
    );
    assert_eq!(
        scrape.gauge("service.residency.resident_tenants") as usize,
        durable.resident_tenants()
    );

    // The story is on the event record.
    let events = durable.observability().events().recent(256);
    assert!(events.iter().any(|e| e.kind == EventKind::TenantEvicted));
    assert!(events.iter().any(|e| e.kind == EventKind::TenantRehydrated));

    // And a rehydrated tenant is fully live: it keeps absorbing feedback.
    let query = tpcds::query(82, 100.0).unwrap();
    durable.submit(watched, &query, 777).unwrap();
    assert!(durable.flush());
}

/// The headline regression: deregistering a tenant while a retrain
/// worker is mid-batch (blocked on the driver lock, snapshot persist
/// still ahead of it) must not let the worker's persistence path
/// recreate the tenant's store directory — reopening the service must
/// not resurrect the tenant.
#[test]
fn deregister_mid_retrain_batch_cannot_resurrect_tenant() {
    let dir = test_root("ghost");
    // snapshot_every = 1: every applied report persists a snapshot — the
    // exact write that used to resurrect the directory.
    let svc = Arc::new(SmartpickService::open(&dir, durable_config(&dir, 1)).unwrap());
    svc.register_tenant("ghost", template()).unwrap();

    // Seed one applied report so the worker path is warm.
    let query = tpcds::query(82, 100.0).unwrap();
    let outcome = svc.submit("ghost", &query, 7).unwrap();
    assert!(svc.flush());
    assert!(dir.join("tenants").join("ghost").exists());

    // Hold the driver lock from another thread, enqueue a report (the
    // worker WAL-appends it, then blocks on the lock), deregister while
    // the worker is wedged mid-batch, then release.
    let holder = {
        let svc = Arc::clone(&svc);
        std::thread::spawn(move || {
            svc.inspect_tenant("ghost", |_| {
                std::thread::sleep(Duration::from_millis(300));
            })
            .unwrap();
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    svc.report_run(
        "ghost",
        CompletedRun {
            query: query.clone(),
            determination: outcome.determination.clone(),
            report: outcome.report.clone(),
        },
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    svc.deregister_tenant("ghost").unwrap();
    holder.join().unwrap();

    // Let the worker finish the wedged batch (its persist must now be
    // suppressed by the defunct stamp), then "crash" and reopen.
    assert!(svc.flush());
    assert!(
        !dir.join("tenants").join("ghost").exists(),
        "worker persistence resurrected a deregistered tenant's directory"
    );
    drop(svc);
    let reopened = SmartpickService::open(&dir, durable_config(&dir, 1)).unwrap();
    assert!(
        reopened.tenants().is_empty(),
        "deregistered tenant came back from the dead: {:?}",
        reopened.tenants()
    );
}

/// The deregister/re-register metrics race: the old teardown pruned
/// `tenant.<id>.*` by name prefix, so a concurrent re-registration's
/// fresh counters could be wiped by the previous registration's
/// deregistration. Teardown is now identity-keyed; the survivor's
/// metrics must always be live in the scrape.
#[test]
fn concurrent_deregister_reregister_never_prunes_fresh_metrics() {
    const ITERS: usize = 40;
    let svc = Arc::new(SmartpickService::new(ServiceConfig {
        retrain_workers: 1,
        ..ServiceConfig::default()
    }));
    let tpl = Arc::new(template());
    svc.register_fork("flip", &tpl, 0).unwrap();

    for round in 0..ITERS {
        let dereg = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || svc.deregister_tenant("flip").unwrap())
        };
        let rereg = {
            let svc = Arc::clone(&svc);
            let tpl = Arc::clone(&tpl);
            std::thread::spawn(move || loop {
                match svc.register_fork("flip", &tpl, round as u64 + 1) {
                    Ok(()) => break,
                    Err(ServiceError::TenantExists(_)) => std::thread::yield_now(),
                    Err(other) => panic!("re-register: {other}"),
                }
            })
        };
        dereg.join().unwrap();
        rereg.join().unwrap();

        // The surviving registration's counters must be the ones in the
        // scrape: one prediction on the fresh tenant reads back as
        // exactly one, through both the stats and the metrics registry.
        svc.predict("flip", &probe(round as u64)).unwrap();
        let stats = svc.tenant_stats("flip").unwrap();
        assert_eq!(
            stats.predictions, 1,
            "round {round}: stale counter instance"
        );
        let scrape = svc.scrape(0);
        assert_eq!(
            scrape.counter("tenant.flip.predictions"),
            1,
            "round {round}: fresh tenant's metrics were pruned by the old deregistration"
        );
    }
}

/// Rehydration is single-flight: N concurrent cold hits produce exactly
/// one snapshot load; the other callers block on it and then serve.
#[test]
fn concurrent_cold_hits_rehydrate_once() {
    let dir = test_root("singleflight");
    let svc = Arc::new(SmartpickService::open(&dir, durable_config(&dir, u64::MAX)).unwrap());
    svc.register_tenant("solo", template()).unwrap();
    let want = format!("{:?}", svc.predict("solo", &probe(3)).unwrap());

    assert!(svc.evict_tenant("solo").unwrap());
    assert_eq!(svc.resident_tenants(), 0);

    let hits = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let hits = Arc::clone(&hits);
            let want = want.clone();
            std::thread::spawn(move || {
                let got = format!("{:?}", svc.predict("solo", &probe(3)).unwrap());
                assert_eq!(got, want, "cold hit diverged from pre-eviction bits");
                hits.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(hits.load(Ordering::Relaxed), 8);
    assert_eq!(
        svc.observability()
            .metrics()
            .counter("service.residency.rehydrations")
            .get(),
        1,
        "rehydration must be single-flight"
    );
    assert_eq!(svc.resident_tenants(), 1);
}

/// A tenant with pending (accepted, unapplied) reports is pinned hot:
/// eviction refuses until the batch commits, and the report is applied
/// against the same driver instance it was accepted for.
#[test]
fn pending_reports_pin_tenant_hot() {
    let dir = test_root("pin");
    let svc = Arc::new(SmartpickService::open(&dir, durable_config(&dir, u64::MAX)).unwrap());
    svc.register_tenant("busy", template()).unwrap();
    let query = tpcds::query(82, 100.0).unwrap();
    let outcome = svc.submit("busy", &query, 1).unwrap();
    assert!(svc.flush());

    // Wedge the worker on the driver lock, then accept a report: pending
    // stays > 0 until the apply lands, and eviction must refuse.
    let holder = {
        let svc = Arc::clone(&svc);
        std::thread::spawn(move || {
            svc.inspect_tenant("busy", |_| {
                std::thread::sleep(Duration::from_millis(200));
            })
            .unwrap();
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    svc.report_run(
        "busy",
        CompletedRun {
            query,
            determination: outcome.determination.clone(),
            report: outcome.report.clone(),
        },
    )
    .unwrap();
    assert!(
        !svc.evict_tenant("busy").unwrap(),
        "eviction must refuse a tenant with pending reports"
    );
    holder.join().unwrap();
    assert!(svc.flush());
    assert_eq!(svc.tenant_stats("busy").unwrap().reports_applied, 2);

    // Batch committed: now the tenant is evictable, and the cold state
    // includes the report that pinned it.
    assert!(svc.evict_tenant("busy").unwrap());
    assert_eq!(svc.tenant_stats("busy").unwrap().reports_applied, 2);
}

/// Kill-during-evict-snapshot crash test (the `wal_truncation` harness
/// idea, applied to the evict path): evict persists a final snapshot;
/// the "kill" tears that file at an arbitrary byte offset. Recovery must
/// quarantine the torn snapshot and rebuild the tenant from the previous
/// snapshot plus WAL replay — bitwise-identical to the pre-kill state.
#[test]
fn torn_evict_snapshot_recovers_from_previous_generation_plus_wal() {
    for (tag, cut) in [("cut25", 0.25f64), ("cut80", 0.80f64)] {
        let dir = test_root(&format!("torn-{tag}"));
        const REPORTS: u64 = 2;
        let want = {
            let svc = SmartpickService::open(&dir, durable_config(&dir, u64::MAX)).unwrap();
            svc.register_tenant("t", template()).unwrap();
            for i in 0..REPORTS {
                let query = tpcds::query(82, 100.0).unwrap();
                svc.submit("t", &query, 20 + i).unwrap();
                assert!(svc.flush());
            }
            let want = format!("{:?}", svc.predict("t", &probe(5)).unwrap());
            assert!(svc.evict_tenant("t").unwrap());
            want
            // Killed here: drop without any further checkpoint.
        };

        // Tear the evict-time snapshot (the newest on disk) at `cut`.
        let tenant_dir = dir.join("tenants").join("t");
        let newest = fs::read_dir(&tenant_dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "snap"))
            .max()
            .expect("evict must have persisted a snapshot");
        let bytes = fs::read(&newest).unwrap();
        let keep = ((bytes.len() as f64) * cut) as usize;
        fs::write(&newest, &bytes[..keep]).unwrap();

        let recovered = SmartpickService::open(&dir, durable_config(&dir, u64::MAX)).unwrap();
        assert_eq!(recovered.tenants(), vec!["t".to_string()]);
        assert_eq!(
            recovered.tenant_stats("t").unwrap().snapshot_generation,
            REPORTS,
            "{tag}: recovery must land at the pre-kill generation"
        );
        assert_eq!(
            format!("{:?}", recovered.predict("t", &probe(5)).unwrap()),
            want,
            "{tag}: recovered prediction diverged from pre-kill bits"
        );
        assert!(
            recovered
                .observability()
                .metrics()
                .counter("store.snapshots_quarantined")
                .get()
                >= 1,
            "{tag}: the torn evict snapshot must be quarantined"
        );
    }
}
