//! Retrain-worker supervision, end to end through the service: a worker
//! killed mid-stream is restarted per the configured policy, the batch it
//! was holding is re-queued (zero lost reports), and the whole incident
//! is visible through events, metrics, health, and the restart counter.

use std::time::{Duration, Instant};

use smartpick_cloudsim::{CloudEnv, Provider};
use smartpick_core::driver::Smartpick;
use smartpick_core::properties::SmartpickProperties;
use smartpick_core::training::TrainOptions;
use smartpick_ml::forest::ForestParams;
use smartpick_obs::{EventKind, RestartPolicy, WorkerState};
use smartpick_service::{CompletedRun, ServiceConfig, SmartpickService};
use smartpick_workloads::tpcds;

fn template() -> Smartpick {
    let queries = vec![tpcds::query(82, 100.0).unwrap()];
    let opts = TrainOptions {
        configs_per_query: 5,
        burst_factor: 3,
        forest: ForestParams {
            n_trees: 10,
            ..ForestParams::default()
        },
        max_vm: 3,
        max_sl: 3,
        ..TrainOptions::default()
    };
    Smartpick::train_with_options(
        CloudEnv::new(Provider::Aws),
        SmartpickProperties::default(),
        &queries,
        &opts,
        11,
    )
    .unwrap()
    .0
}

fn service(policy: RestartPolicy) -> SmartpickService {
    SmartpickService::new(ServiceConfig {
        retrain_workers: 1,
        restart_policy: policy,
        supervisor_poll: Duration::from_millis(5),
        ..ServiceConfig::default()
    })
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// One applied run the tests can re-report as feedback at will.
fn completed_run(service: &SmartpickService, tenant: &str) -> CompletedRun {
    let query = tpcds::query(82, 100.0).unwrap();
    let outcome = service.submit(tenant, &query, 7).unwrap();
    CompletedRun {
        query,
        determination: outcome.determination,
        report: outcome.report,
    }
}

#[test]
fn poisoned_worker_restarts_and_loses_no_reports() {
    let service = service(RestartPolicy::Restart {
        max_retries: 3,
        backoff: Duration::from_millis(10),
    });
    service.register_tenant("acme", template()).unwrap();
    let run = completed_run(&service, "acme");

    // Kill the worker mid-stream: reports before the poison, the poison,
    // reports after. The rescue guard must carry everything unapplied
    // across the restart.
    for _ in 0..4 {
        service.report_run("acme", run.clone()).unwrap();
    }
    service.poison_worker(0).unwrap();
    for _ in 0..4 {
        service.report_run("acme", run.clone()).unwrap();
    }

    assert!(service.flush(), "flush must drain through the restart");
    wait_until("the restart to be recorded", || {
        service.worker_status()[0].restarts >= 1
    });

    // Zero lost reports: everything accepted was applied (at-least-once,
    // so applied may exceed enqueued, never trail it).
    let stats = service.tenant_stats("acme").unwrap();
    assert!(
        stats.reports_applied >= stats.reports_enqueued,
        "applied {} of {} accepted reports",
        stats.reports_applied,
        stats.reports_enqueued
    );
    assert_eq!(stats.pending_reports, 0);

    // The incident is visible everywhere the issue says it must be:
    // supervisor status…
    let status = &service.worker_status()[0];
    assert_eq!(status.state, WorkerState::Alive);
    assert!(status.restarts >= 1);
    assert!(status
        .last_panic
        .as_deref()
        .unwrap_or_default()
        .contains("poisoned"));
    // …the event log…
    let kinds: Vec<EventKind> = service
        .observability()
        .events()
        .recent(256)
        .iter()
        .map(|e| e.kind)
        .collect();
    assert!(kinds.contains(&EventKind::WorkerPanic));
    assert!(kinds.contains(&EventKind::WorkerRestarted));
    // …the scrape's restart counter…
    let envelope = service.scrape(0);
    assert!(envelope.counter("service.worker.restarts") >= 1);
    assert!(envelope.counter("service.worker.panics") >= 1);
    // …and health, which reports the restart yet stays ready.
    let health = service.health();
    assert!(health.live && health.ready, "reasons: {:?}", health.reasons);
    assert!(health.workers[0].restarts >= 1);

    // The restarted worker is a real worker: feedback still applies.
    service.report_run("acme", run).unwrap();
    assert!(service.flush());
}

#[test]
fn strict_policy_fails_the_shard_and_goes_unready() {
    let service = service(RestartPolicy::Strict);
    service.register_tenant("acme", template()).unwrap();
    // A report in flight when the worker dies: with `Strict` it stays
    // queued forever, which is exactly what unready + failed flush mean.
    let run = completed_run(&service, "acme");
    service.report_run("acme", run).unwrap();

    service.poison_worker(0).unwrap();
    wait_until("the shard to be marked failed", || {
        service.worker_status()[0].state == WorkerState::Failed
    });

    let health = service.health();
    assert!(health.live, "a failed worker degrades, never kills");
    assert!(!health.ready);
    assert!(health.reasons.iter().any(|r| r.contains("failed")));
    assert_eq!(health.workers[0].state, "failed");

    let kinds: Vec<EventKind> = service
        .observability()
        .events()
        .recent(256)
        .iter()
        .map(|e| e.kind)
        .collect();
    assert!(kinds.contains(&EventKind::WorkerPanic));
    assert!(kinds.contains(&EventKind::WorkerFailed));
    assert!(!kinds.contains(&EventKind::WorkerRestarted));
    assert_eq!(service.scrape(0).counter("service.worker.restarts"), 0);

    // A flush against a permanently dead shard reports failure instead
    // of hanging; the read path is untouched.
    assert!(!service.flush());
    let query = tpcds::query(82, 100.0).unwrap();
    service.determine("acme", &query, 5).unwrap();
}

#[test]
fn retry_budget_exhaustion_fails_the_shard() {
    let service = service(RestartPolicy::Restart {
        max_retries: 2,
        backoff: Duration::from_millis(5),
    });
    service.register_tenant("acme", template()).unwrap();

    // Three poisons against a budget of two restarts: the third panic
    // exhausts the policy.
    for _ in 0..3 {
        service.poison_worker(0).unwrap();
        let target = service.worker_status()[0].restarts + 1;
        wait_until("the panic to be handled", || {
            let s = &service.worker_status()[0];
            s.state == WorkerState::Failed || s.restarts >= target
        });
        if service.worker_status()[0].state == WorkerState::Failed {
            break;
        }
    }
    wait_until("the budget to run out", || {
        service.worker_status()[0].state == WorkerState::Failed
    });
    assert_eq!(service.worker_status()[0].restarts, 2);
    let envelope = service.scrape(0);
    assert_eq!(envelope.counter("service.worker.restarts"), 2);
    assert_eq!(envelope.counter("service.worker.panics"), 3);
    assert!(!service.health().ready);
}
