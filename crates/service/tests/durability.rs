//! Durability, end to end through the service: a service killed
//! mid-stream (worker poisoned, process "dies" by drop without a final
//! checkpoint) reopens from disk and serves the **same predictions at
//! the same snapshot generation** as a twin that never crashed — zero
//! accepted reports lost. Plus the degraded paths: a corrupted newest
//! snapshot is quarantined and rebuilt from the WAL, and
//! [`FlushOutcome`] tells a timed-out flush from a dead shard.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use smartpick_cloudsim::{CloudEnv, Provider};
use smartpick_core::driver::Smartpick;
use smartpick_core::properties::SmartpickProperties;
use smartpick_core::training::TrainOptions;
use smartpick_core::{ConstraintMode, PredictionRequest};
use smartpick_ml::forest::ForestParams;
use smartpick_obs::{EventKind, RestartPolicy};
use smartpick_service::{
    CompletedRun, FlushOutcome, PersistenceConfig, ServiceConfig, SmartpickService,
};
use smartpick_workloads::tpcds;

/// A store root inside the repo's own `target/` (tests must not touch
/// paths outside the repository).
fn test_root(tag: &str) -> PathBuf {
    let dir = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/tmp"))
        .join(format!("durability-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic small trained driver — same recipe, same seed, so two
/// calls yield bit-identical drivers (the twin test's starting line).
fn template() -> Smartpick {
    let queries = vec![tpcds::query(82, 100.0).unwrap()];
    let opts = TrainOptions {
        configs_per_query: 5,
        burst_factor: 3,
        forest: ForestParams {
            n_trees: 10,
            ..ForestParams::default()
        },
        max_vm: 3,
        max_sl: 3,
        ..TrainOptions::default()
    };
    Smartpick::train_with_options(
        CloudEnv::new(Provider::Aws),
        SmartpickProperties::default(),
        &queries,
        &opts,
        11,
    )
    .unwrap()
    .0
}

/// Single-worker config so report order (and thus generation count) is
/// deterministic; `snapshot_every` picks how much recovery leans on the
/// WAL versus snapshots.
fn durable_config(dir: &Path, snapshot_every: u64) -> ServiceConfig {
    ServiceConfig {
        retrain_workers: 1,
        restart_policy: RestartPolicy::Restart {
            max_retries: 3,
            backoff: Duration::from_millis(10),
        },
        supervisor_poll: Duration::from_millis(5),
        persistence: Some(PersistenceConfig {
            snapshot_every,
            ..PersistenceConfig::at(dir)
        }),
        ..ServiceConfig::default()
    }
}

fn probe(seed: u64) -> PredictionRequest {
    PredictionRequest {
        query: tpcds::query(82, 100.0).unwrap(),
        knob: 0.0,
        constraint: ConstraintMode::Hybrid,
        seed,
    }
}

/// Bit-faithful comparison via `Debug`: f64s render as their shortest
/// round-trip form, so any bit of drift in the recovered model shows.
fn assert_same_prediction(a: &SmartpickService, b: &SmartpickService, tenant: &str, seed: u64) {
    let da = a.predict(tenant, &probe(seed)).unwrap();
    let db = b.predict(tenant, &probe(seed)).unwrap();
    assert_eq!(
        format!("{da:?}"),
        format!("{db:?}"),
        "predictions diverged at seed {seed}"
    );
}

/// The acceptance-criterion test: run a durable service and an
/// in-memory twin on identical feedback, kill the durable one's worker
/// mid-stream, drop it without a final checkpoint, reopen from disk,
/// and require the recovered service to match the twin exactly —
/// same snapshot generation, bitwise-same predictions.
#[test]
fn crash_and_reopen_matches_a_never_crashed_twin() {
    let dir = test_root("twin");
    const REPORTS: u64 = 6;

    // snapshot_every is huge: only the registration-time generation-0
    // snapshot exists on disk, so recovery must earn everything back by
    // WAL replay.
    let durable = SmartpickService::open(&dir, durable_config(&dir, u64::MAX)).unwrap();
    let twin = SmartpickService::new(ServiceConfig {
        retrain_workers: 1,
        supervisor_poll: Duration::from_millis(5),
        ..ServiceConfig::default()
    });
    durable.register_tenant("acme", template()).unwrap();
    twin.register_tenant("acme", template()).unwrap();
    // Guard: the two independently trained drivers really are twins.
    assert_same_prediction(&durable, &twin, "acme", 999);

    for i in 0..REPORTS {
        if i == REPORTS / 2 {
            // Kill the worker mid-stream. The rescue guard re-queues the
            // in-flight batch; replay dedup (by run id) keeps the WAL's
            // at-least-once appends from double-applying.
            durable.poison_worker(0).unwrap();
        }
        let query = tpcds::query(82, 100.0).unwrap();
        let outcome = durable.submit("acme", &query, 100 + i).unwrap();
        // The twin receives the *same* accepted report.
        twin.report_run(
            "acme",
            CompletedRun {
                query,
                determination: outcome.determination.clone(),
                report: outcome.report.clone(),
            },
        )
        .unwrap();
        // One publish per report on both sides, so the generation
        // counters advance in lockstep.
        assert!(durable.flush(), "durable flush {i}");
        assert!(twin.flush(), "twin flush {i}");
    }
    assert_eq!(
        durable.tenant_stats("acme").unwrap().snapshot_generation,
        twin.tenant_stats("acme").unwrap().snapshot_generation,
        "pre-crash generations must already agree"
    );

    // "Crash": drop without persist_all — the only durable state is the
    // generation-0 snapshot plus the WAL.
    drop(durable);

    let recovered = SmartpickService::open(&dir, durable_config(&dir, u64::MAX)).unwrap();
    assert_eq!(recovered.tenants(), vec!["acme".to_string()]);

    // Same snapshot generation as the twin — zero accepted reports lost,
    // none double-applied.
    let got = recovered.tenant_stats("acme").unwrap().snapshot_generation;
    let want = twin.tenant_stats("acme").unwrap().snapshot_generation;
    assert_eq!(got, want, "recovered generation != twin generation");
    assert_eq!(want, REPORTS, "one publish per report");

    // Bitwise-identical predictions across a spread of probes.
    for seed in [1, 9, 42, 7777] {
        assert_same_prediction(&recovered, &twin, "acme", seed);
    }

    // The recovery is visible: replayed-record counter covers every
    // report, and the structured events tell the story.
    let metrics = recovered.observability().metrics();
    assert!(
        metrics.counter("store.wal_records_replayed").get() >= REPORTS,
        "replay counter must cover all {REPORTS} reports"
    );
    let events = recovered.observability().events().recent(256);
    assert!(events.iter().any(|e| e.kind == EventKind::SnapshotLoaded));
    assert!(events.iter().any(|e| e.kind == EventKind::WalReplayed));

    // And the recovered service is live, not a museum piece: it keeps
    // accepting feedback and advancing.
    let query = tpcds::query(82, 100.0).unwrap();
    recovered.submit("acme", &query, 4242).unwrap();
    assert!(recovered.flush());
    assert_eq!(
        recovered.tenant_stats("acme").unwrap().snapshot_generation,
        REPORTS + 1
    );
}

/// A corrupted newest snapshot must not fail startup: it is quarantined
/// and the tenant rebuilt from the previous snapshot plus WAL replay, at
/// the exact generation it crashed at.
#[test]
fn corrupt_newest_snapshot_quarantines_and_rebuilds_from_wal() {
    let dir = test_root("quarantine");
    const REPORTS: u64 = 3;

    // snapshot_every = 1: a snapshot persists after every applied
    // report, so the disk holds the two newest generations plus a WAL.
    {
        let svc = SmartpickService::open(&dir, durable_config(&dir, 1)).unwrap();
        svc.register_tenant("t-1", template()).unwrap();
        for i in 0..REPORTS {
            let query = tpcds::query(82, 100.0).unwrap();
            svc.submit("t-1", &query, 10 + i).unwrap();
            assert!(svc.flush());
        }
    }

    // Flip one payload byte in the newest snapshot file.
    let tenant_dir = dir.join("tenants").join("t-1");
    let newest = fs::read_dir(&tenant_dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "snap"))
        .max()
        .expect("at least one snapshot on disk");
    let mut bytes = fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&newest, &bytes).unwrap();

    let svc = SmartpickService::open(&dir, durable_config(&dir, 1)).unwrap();
    // Startup succeeded and the tenant is back at the crash generation:
    // older snapshot + WAL suffix == everything the corrupt file held.
    assert_eq!(svc.tenants(), vec!["t-1".to_string()]);
    assert_eq!(
        svc.tenant_stats("t-1").unwrap().snapshot_generation,
        REPORTS
    );
    // The bad file is visible: quarantined on disk, counted, evented,
    // and in the scrape.
    assert!(tenant_dir.join("quarantine").exists());
    let scrape = svc.scrape(64);
    assert!(
        scrape.metric("store.snapshots_quarantined").is_some(),
        "scrape must expose the quarantine counter"
    );
    assert!(
        svc.observability()
            .metrics()
            .counter("store.snapshots_quarantined")
            .get()
            >= 1
    );
    assert!(svc
        .observability()
        .events()
        .recent(256)
        .iter()
        .any(|e| e.kind == EventKind::SnapshotQuarantined));
    // Still serving.
    svc.predict("t-1", &probe(5)).unwrap();
}

/// [`FlushOutcome`] separates the three non-success shapes: a deadline
/// that fired while a (restarting) shard was still draining, a shard the
/// supervisor gave up on, and a service already shut down.
#[test]
fn flush_outcomes_distinguish_timeout_failure_and_stop() {
    // Timed out: a poisoned worker under a long restart backoff leaves
    // the shard draining-but-dead for longer than the flush deadline.
    let svc = SmartpickService::new(ServiceConfig {
        retrain_workers: 1,
        restart_policy: RestartPolicy::Restart {
            max_retries: 5,
            backoff: Duration::from_millis(500),
        },
        supervisor_poll: Duration::from_millis(5),
        ..ServiceConfig::default()
    });
    svc.register_tenant("acme", template()).unwrap();
    assert_eq!(
        svc.try_flush(Duration::from_secs(10)),
        FlushOutcome::Flushed
    );
    svc.poison_worker(0).unwrap();
    assert_eq!(
        svc.try_flush(Duration::from_millis(100)),
        FlushOutcome::TimedOut { shard: 0 },
        "mid-backoff flush must time out, not report failure"
    );
    // After the restart the same shard drains fine — timeout really did
    // mean "try again later".
    assert!(svc.flush());

    // Shard failed: under Strict the first panic is terminal.
    let strict = SmartpickService::new(ServiceConfig {
        retrain_workers: 1,
        restart_policy: RestartPolicy::Strict,
        supervisor_poll: Duration::from_millis(5),
        ..ServiceConfig::default()
    });
    strict.register_tenant("acme", template()).unwrap();
    strict.poison_worker(0).unwrap();
    assert_eq!(
        strict.try_flush(Duration::from_secs(10)),
        FlushOutcome::ShardFailed { shard: 0 }
    );

    // Stopped: after shutdown there is no queue to flush.
    let mut stopped = SmartpickService::new(ServiceConfig {
        retrain_workers: 1,
        ..ServiceConfig::default()
    });
    stopped.shutdown();
    assert_eq!(
        stopped.try_flush(Duration::from_millis(10)),
        FlushOutcome::Stopped
    );
}

/// Registration persists a generation-0 snapshot immediately (a tenant
/// is durable from the moment `register_tenant` returns), deregistration
/// removes the tenant's files, and `persist_tenant` checkpoints on
/// demand.
#[test]
fn registration_and_admin_checkpoints_are_durable() {
    let dir = test_root("admin");

    // Durable at birth: a tenant is recoverable the moment
    // `register_tenant` returns, before any reports flow.
    let want = {
        let svc = SmartpickService::open(&dir, durable_config(&dir, u64::MAX)).unwrap();
        svc.register_tenant("t-a", template()).unwrap();
        format!("{:?}", svc.predict("t-a", &probe(31)).unwrap())
    };

    let svc = SmartpickService::open(&dir, durable_config(&dir, u64::MAX)).unwrap();
    assert_eq!(svc.tenants(), vec!["t-a".to_string()]);
    assert_eq!(svc.tenant_stats("t-a").unwrap().snapshot_generation, 0);
    assert_eq!(
        format!("{:?}", svc.predict("t-a", &probe(31)).unwrap()),
        want
    );

    // An admin checkpoint reports the snapshot's at-rest size.
    let query = tpcds::query(82, 100.0).unwrap();
    svc.submit("t-a", &query, 55).unwrap();
    assert!(svc.flush());
    let bytes = svc.persist_tenant("t-a").unwrap();
    assert!(bytes > 0);
    assert_eq!(svc.persist_all().unwrap(), 1);

    // Deregistration takes the files with it.
    svc.deregister_tenant("t-a").unwrap();
    assert!(!dir.join("tenants").join("t-a").exists());
    drop(svc);
    let empty = SmartpickService::open(&dir, durable_config(&dir, u64::MAX)).unwrap();
    assert!(empty.tenants().is_empty());
}
