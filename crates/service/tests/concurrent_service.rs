//! The acceptance test for smartpickd: ≥4 concurrent client threads
//! drive one `SmartpickService` with mixed tenants, predictions
//! interleaved with run reports, while the background worker retrains —
//! and every prediction must still succeed.

use std::sync::Arc;

use smartpick_cloudsim::{CloudEnv, Provider};
use smartpick_core::driver::Smartpick;
use smartpick_core::properties::SmartpickProperties;
use smartpick_core::training::TrainOptions;
use smartpick_core::wp::{ConstraintMode, PredictionRequest, WorkloadPredictionService};
use smartpick_ml::forest::ForestParams;
use smartpick_service::{CompletedRun, ServiceConfig, ServiceError, SmartpickService};
use smartpick_workloads::tpcds;

fn quick_opts() -> TrainOptions {
    TrainOptions {
        configs_per_query: 6,
        burst_factor: 3,
        forest: ForestParams {
            n_trees: 15,
            ..ForestParams::default()
        },
        max_vm: 4,
        max_sl: 4,
        ..TrainOptions::default()
    }
}

/// A trained template driver every tenant forks from. The tiny error
/// trigger makes practically every applied report fire a retrain, so the
/// test exercises reads racing live retrains.
fn template(trigger_secs: f64) -> Smartpick {
    let queries: Vec<_> = [82u32, 68]
        .iter()
        .map(|&q| tpcds::query(q, 100.0).unwrap())
        .collect();
    Smartpick::train_with_options(
        CloudEnv::new(Provider::Aws),
        SmartpickProperties {
            error_difference_trigger_secs: trigger_secs,
            ..SmartpickProperties::default()
        },
        &queries,
        &quick_opts(),
        5,
    )
    .unwrap()
    .0
}

#[test]
fn concurrent_mixed_tenants_with_live_retrains() {
    const THREADS: u64 = 6;
    const TENANTS: u64 = 3;
    const OPS_PER_THREAD: u64 = 12;

    let service = Arc::new(SmartpickService::new(ServiceConfig {
        shards: 4,
        queue_capacity: 256,
        tenant_pending_cap: 64,
        retrain_batch_max: 8,
        retrain_workers: 2,
        ..ServiceConfig::default()
    }));
    let tpl = template(1e-6);
    for t in 0..TENANTS {
        service
            .register_fork(format!("tenant-{t}"), &tpl, 100 + t)
            .unwrap();
    }

    let handles: Vec<_> = (0..THREADS)
        .map(|thread| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let mut predictions = 0u64;
                let mut submissions = 0u64;
                for op in 0..OPS_PER_THREAD {
                    let tenant = format!("tenant-{}", (thread + op) % TENANTS);
                    let query = tpcds::query(if op % 2 == 0 { 82 } else { 68 }, 100.0).unwrap();
                    let seed = thread * 1000 + op;
                    if op % 3 == 0 {
                        // Pure snapshot read: must never fail, even while
                        // the worker is mid-retrain on this tenant.
                        let det = service
                            .predict(
                                &tenant,
                                &PredictionRequest {
                                    query,
                                    knob: 0.0,
                                    constraint: ConstraintMode::Hybrid,
                                    seed,
                                },
                            )
                            .expect("prediction must succeed during retrains");
                        assert!(det.predicted_seconds.is_finite());
                        assert!(det.allocation.total_instances() > 0);
                        predictions += 1;
                    } else {
                        // Full path: predict, execute, feed the report back.
                        let outcome = service
                            .submit(&tenant, &query, seed)
                            .expect("submit must succeed");
                        assert!(outcome.report.seconds() > 0.0);
                        assert!(outcome.relative_prediction_error().is_finite());
                        submissions += 1;
                    }
                }
                (predictions, submissions)
            })
        })
        .collect();

    let mut predictions = 0u64;
    let mut submissions = 0u64;
    for handle in handles {
        let (p, s) = handle.join().expect("no client thread may panic");
        predictions += p;
        submissions += s;
    }

    assert!(service.flush(), "flush completes");
    let stats = service.stats();
    assert_eq!(stats.tenants, TENANTS as usize);
    // submit() also runs a determination, so both paths count predictions.
    assert_eq!(stats.predictions, predictions + submissions);
    assert_eq!(stats.executions, submissions);
    // No feedback was shed at this load, and after the flush everything
    // accepted has been applied.
    assert_eq!(stats.rejections, 0);
    assert_eq!(stats.reports_enqueued, submissions);
    assert_eq!(stats.reports_applied, submissions);
    assert_eq!(stats.apply_failures, 0);
    assert_eq!(stats.queue_depth, 0);
    // The tiny trigger means the worker really was retraining under the
    // readers the whole time.
    assert!(stats.retrains > 0, "retrains must have fired: {stats:?}");
    assert_eq!(stats.predict_latency.count, predictions + submissions);
    assert!(stats.predict_latency.p99_us >= stats.predict_latency.p50_us);

    // Per-tenant accounting adds up and snapshots were republished.
    for t in 0..TENANTS {
        let ts = service.tenant_stats(&format!("tenant-{t}")).unwrap();
        assert_eq!(ts.pending_reports, 0);
        assert!(ts.snapshot_generation > 0, "snapshot republished: {ts:?}");
    }
}

#[test]
fn quota_backpressure_sheds_feedback_not_queries() {
    let service = SmartpickService::new(ServiceConfig {
        shards: 2,
        queue_capacity: 512,
        tenant_pending_cap: 2,
        retrain_batch_max: 4,
        retrain_workers: 1,
        ..ServiceConfig::default()
    });
    // Default 50 s trigger, but the run below is forced to mispredict by
    // 500 s, so every *applied* report costs the worker a full retrain —
    // slow enough that a tight enqueue loop overruns the pending cap.
    let tpl = template(50.0);
    service.register_tenant("hog", tpl).unwrap();

    let q = tpcds::query(82, 100.0).unwrap();
    let outcome = service.submit("hog", &q, 7).unwrap();
    let mut slow = outcome.report.clone();
    slow.completion = smartpick_cloudsim::SimDuration::from_secs_f64(
        outcome.determination.predicted_seconds + 500.0,
    );

    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for _ in 0..200 {
        match service.report_run(
            "hog",
            CompletedRun {
                query: q.clone(),
                determination: outcome.determination.clone(),
                report: slow.clone(),
            },
        ) {
            Ok(()) => accepted += 1,
            Err(e @ (ServiceError::QuotaExceeded { .. } | ServiceError::QueueFull { .. })) => {
                assert!(e.is_retryable());
                rejected += 1;
            }
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    assert!(rejected > 0, "cap 2 must shed a 200-report burst");
    assert!(accepted > 0, "some reports must get through");

    // Shedding never breaks the read path.
    service
        .predict("hog", &PredictionRequest::new(q, 3))
        .unwrap();

    service.flush();
    let ts = service.tenant_stats("hog").unwrap();
    assert_eq!(ts.reports_enqueued, accepted + 1); // +1 from submit()'s feedback
    assert_eq!(ts.reports_applied, accepted + 1);
    assert_eq!(ts.rejections, rejected);
    assert_eq!(ts.pending_reports, 0);
    assert!(ts.retrains > 0);
}

#[test]
fn lifecycle_register_deregister_shutdown() {
    let mut service = SmartpickService::with_defaults();
    let tpl = template(50.0);
    service.register_fork("a", &tpl, 1).unwrap();
    service.register_fork("b", &tpl, 2).unwrap();
    assert!(matches!(
        service.register_fork("a", &tpl, 3),
        Err(ServiceError::TenantExists(_))
    ));
    assert_eq!(service.tenants(), vec!["a".to_owned(), "b".to_owned()]);

    let q = tpcds::query(82, 100.0).unwrap();
    assert!(matches!(
        service.predict("nope", &PredictionRequest::new(q.clone(), 1)),
        Err(ServiceError::UnknownTenant(_))
    ));

    // Deregistration folds the tenant's history into the service totals,
    // so aggregates never run backwards.
    service.submit("b", &q, 5).unwrap();
    service.flush();
    let before = service.stats();
    assert!(before.executions > 0);
    service.deregister_tenant("b").unwrap();
    assert_eq!(service.tenants(), vec!["a".to_owned()]);
    let after = service.stats();
    assert_eq!(after.executions, before.executions);
    assert_eq!(after.reports_applied, before.reports_applied);
    assert_eq!(after.tenants, 1);

    service.shutdown();
    assert!(matches!(
        service.report_run(
            "a",
            CompletedRun {
                query: q.clone(),
                determination: tpl
                    .snapshot()
                    .determine(&PredictionRequest::new(q, 2))
                    .unwrap(),
                report: smartpick_core::rm::ResourceManager::new(CloudEnv::new(Provider::Aws))
                    .execute(
                        &tpcds::query(82, 100.0).unwrap(),
                        &smartpick_engine::Allocation::new(2, 2),
                        9
                    )
                    .unwrap(),
            }
        ),
        Err(ServiceError::Stopped)
    ));
    assert!(!service.flush(), "flush after shutdown reports stopped");
    // Registration after shutdown is refused too.
    assert!(matches!(
        service.register_fork("c", &tpl, 4),
        Err(ServiceError::Stopped)
    ));
}
