//! Scraping must never serialise the readers it measures: this drives
//! four predict threads flat out while the main thread scrapes, reads
//! stats, and checks health the whole time, then proves the counters
//! add up.

use std::sync::Arc;

use smartpick_cloudsim::{CloudEnv, Provider};
use smartpick_core::driver::Smartpick;
use smartpick_core::properties::SmartpickProperties;
use smartpick_core::training::TrainOptions;
use smartpick_ml::forest::ForestParams;
use smartpick_obs::SCRAPE_VERSION;
use smartpick_service::SmartpickService;
use smartpick_workloads::tpcds;

fn template() -> Smartpick {
    let queries = vec![tpcds::query(82, 100.0).unwrap()];
    let opts = TrainOptions {
        configs_per_query: 5,
        burst_factor: 3,
        forest: ForestParams {
            n_trees: 10,
            ..ForestParams::default()
        },
        max_vm: 3,
        max_sl: 3,
        ..TrainOptions::default()
    };
    Smartpick::train_with_options(
        CloudEnv::new(Provider::Aws),
        SmartpickProperties::default(),
        &queries,
        &opts,
        11,
    )
    .unwrap()
    .0
}

#[test]
fn scraping_concurrently_with_predict_threads_is_safe_and_consistent() {
    const THREADS: usize = 4;
    const PREDICTIONS_PER_THREAD: u64 = 50;

    let service = Arc::new(SmartpickService::with_defaults());
    let tpl = template();
    for t in 0..THREADS {
        service
            .register_fork(format!("tenant-{t}"), &tpl, t as u64)
            .unwrap();
    }
    let query = tpcds::query(82, 100.0).unwrap();

    let predictors: Vec<_> = (0..THREADS)
        .map(|t| {
            let service = Arc::clone(&service);
            let query = query.clone();
            std::thread::spawn(move || {
                for seed in 0..PREDICTIONS_PER_THREAD {
                    service
                        .determine(&format!("tenant-{t}"), &query, seed)
                        .unwrap();
                }
            })
        })
        .collect();

    // Scrape continuously while the predictors hammer the hot path; every
    // envelope must be internally sane (monotonic reads aside).
    let mut last_predictions = 0;
    while predictors.iter().any(|p| !p.is_finished()) {
        let envelope = service.scrape(32);
        assert_eq!(envelope.version, SCRAPE_VERSION);
        let seen = envelope.counter("service.predictions");
        assert!(
            seen >= last_predictions,
            "counter ran backwards: {seen} < {last_predictions}"
        );
        last_predictions = seen;
        let stats = service.stats();
        assert_eq!(stats.tenants, THREADS);
        assert!(service.health().live);
    }
    for p in predictors {
        p.join().unwrap();
    }

    // Quiesced: the totals, the per-tenant counters, and the latency
    // histogram must all agree on exactly how much work happened.
    let total = THREADS as u64 * PREDICTIONS_PER_THREAD;
    let envelope = service.scrape(0);
    assert_eq!(envelope.counter("service.predictions"), total);
    for t in 0..THREADS {
        assert_eq!(
            envelope.counter(&format!("tenant.tenant-{t}.predictions")),
            PREDICTIONS_PER_THREAD
        );
    }
    let stats = service.stats();
    assert_eq!(stats.predictions, total);
    assert_eq!(stats.predict_latency.count, total);
    assert!(service.health().ready);

    // Deregistering a tenant prunes its metrics from the scrape but the
    // totals keep the full history — aggregates never run backwards.
    service.deregister_tenant("tenant-0").unwrap();
    let envelope = service.scrape(0);
    assert!(envelope.metric("tenant.tenant-0.predictions").is_none());
    assert_eq!(envelope.counter("service.predictions"), total);
    assert_eq!(service.stats().predictions, total);
    assert_eq!(service.stats().tenants, THREADS - 1);
}
