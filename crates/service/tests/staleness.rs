//! Snapshot-staleness SLO: predictions served from an over-age snapshot
//! are flagged and counted — never shed, never delayed.

use std::time::Duration;

use smartpick_cloudsim::{CloudEnv, Provider};
use smartpick_core::driver::Smartpick;
use smartpick_core::properties::SmartpickProperties;
use smartpick_core::training::TrainOptions;
use smartpick_ml::forest::ForestParams;
use smartpick_service::{ServiceConfig, SmartpickService};
use smartpick_workloads::tpcds;

fn template() -> Smartpick {
    let queries = vec![tpcds::query(82, 100.0).unwrap()];
    let opts = TrainOptions {
        configs_per_query: 5,
        burst_factor: 3,
        forest: ForestParams {
            n_trees: 10,
            ..ForestParams::default()
        },
        max_vm: 3,
        max_sl: 3,
        ..TrainOptions::default()
    };
    Smartpick::train_with_options(
        CloudEnv::new(Provider::Aws),
        SmartpickProperties::default(),
        &queries,
        &opts,
        11,
    )
    .unwrap()
    .0
}

fn service_with_max_age(max_age: Option<Duration>) -> SmartpickService {
    SmartpickService::new(ServiceConfig {
        max_snapshot_age: max_age,
        ..ServiceConfig::default()
    })
}

#[test]
fn overage_snapshot_predictions_are_flagged_and_counted() {
    let service = service_with_max_age(Some(Duration::from_micros(1)));
    service.register_tenant("acme", template()).unwrap();
    let query = tpcds::query(82, 100.0).unwrap();

    // Let the registration snapshot age past the (tiny) bound.
    std::thread::sleep(Duration::from_millis(5));
    let stats = service.tenant_stats("acme").unwrap();
    assert!(stats.snapshot_stale, "snapshot must read as stale");
    assert_eq!(stats.stale_predictions, 0);

    // The prediction is still served — staleness flags, never sheds.
    for seed in 0..3 {
        service.determine("acme", &query, seed).unwrap();
    }
    let stats = service.tenant_stats("acme").unwrap();
    assert_eq!(stats.predictions, 3);
    assert_eq!(stats.stale_predictions, 3);
    assert_eq!(service.stats().stale_predictions, 3);
}

#[test]
fn fresh_snapshots_are_not_flagged() {
    let service = service_with_max_age(Some(Duration::from_secs(3600)));
    service.register_tenant("acme", template()).unwrap();
    let query = tpcds::query(82, 100.0).unwrap();
    service.determine("acme", &query, 1).unwrap();
    let stats = service.tenant_stats("acme").unwrap();
    assert!(!stats.snapshot_stale);
    assert_eq!(stats.predictions, 1);
    assert_eq!(stats.stale_predictions, 0);
}

#[test]
fn staleness_check_is_off_by_default() {
    let service = SmartpickService::with_defaults();
    assert_eq!(service.config().max_snapshot_age, None);
    service.register_tenant("acme", template()).unwrap();
    std::thread::sleep(Duration::from_millis(2));
    let query = tpcds::query(82, 100.0).unwrap();
    service.determine("acme", &query, 1).unwrap();
    let stats = service.tenant_stats("acme").unwrap();
    assert!(!stats.snapshot_stale);
    assert_eq!(stats.stale_predictions, 0);
}

#[test]
fn republished_snapshot_resets_the_age() {
    // Stale only because we let the snapshot age past the bound; the
    // retrain worker's republish restarts the clock.
    let max_age = Duration::from_millis(20);
    let service = service_with_max_age(Some(max_age));
    let tpl = template();
    service.register_tenant("acme", tpl).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let before = service.tenant_stats("acme").unwrap();
    // Ages only grow, so this half cannot flake under scheduler pauses.
    assert!(before.snapshot_stale);

    // Feed a completed run through; the worker's apply republishes.
    let query = tpcds::query(82, 100.0).unwrap();
    let outcome = service.submit("acme", &query, 3).unwrap();
    assert!(outcome.report.seconds() > 0.0);
    assert!(service.flush());
    let stats = service.tenant_stats("acme").unwrap();
    assert!(stats.snapshot_generation >= 1);
    // The age restarted from the republish instant. A scheduler pause
    // between flush() and this read can legitimately push it back over
    // the 20 ms bound, so assert flag/age consistency (both come from
    // one sample) rather than racing the wall clock.
    assert_eq!(stats.snapshot_stale, stats.snapshot_age > max_age);
    assert!(
        stats.snapshot_age < before.snapshot_age + Duration::from_secs(60),
        "age must have been reset, not accumulated"
    );
}
