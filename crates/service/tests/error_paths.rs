//! Error-path coverage for smartpickd: every documented rejection comes
//! back as the documented error, is visible in the shed counters, and
//! never corrupts the books.

use std::time::Duration;

use smartpick_cloudsim::{CloudEnv, Provider, SimDuration};
use smartpick_core::driver::Smartpick;
use smartpick_core::properties::SmartpickProperties;
use smartpick_core::training::TrainOptions;
use smartpick_core::wp::{PredictionRequest, WorkloadPredictionService};
use smartpick_ml::forest::ForestParams;
use smartpick_service::{CompletedRun, ServiceConfig, ServiceError, SmartpickService};
use smartpick_workloads::tpcds;

fn template(trigger_secs: f64) -> Smartpick {
    let queries = vec![tpcds::query(82, 100.0).unwrap()];
    let opts = TrainOptions {
        configs_per_query: 5,
        burst_factor: 3,
        forest: ForestParams {
            n_trees: 10,
            ..ForestParams::default()
        },
        max_vm: 3,
        max_sl: 3,
        ..TrainOptions::default()
    };
    Smartpick::train_with_options(
        CloudEnv::new(Provider::Aws),
        SmartpickProperties {
            error_difference_trigger_secs: trigger_secs,
            ..SmartpickProperties::default()
        },
        &queries,
        &opts,
        11,
    )
    .unwrap()
    .0
}

/// A completed run whose report mispredicts by `error_secs` (0.0 = no
/// retrain under the default 50 s trigger: cheap, fast applies).
fn run_with_error(tpl: &Smartpick, error_secs: f64) -> CompletedRun {
    let query = tpcds::query(82, 100.0).unwrap();
    let determination = tpl
        .snapshot()
        .determine(&PredictionRequest::new(query.clone(), 17))
        .unwrap();
    let mut report = tpl
        .shared_resource_manager()
        .execute(&query, &determination.allocation, 23)
        .unwrap();
    report.completion = SimDuration::from_secs_f64(determination.predicted_seconds + error_secs);
    CompletedRun {
        query,
        determination,
        report,
    }
}

#[test]
fn queue_full_sheds_with_documented_error_and_counter() {
    // One worker, a 2-slot queue, and a huge pending cap so the *queue*
    // is the binding constraint; every applied report costs a retrain
    // (500 s misprediction), so the worker cannot keep up with a tight
    // enqueue loop.
    let service = SmartpickService::new(ServiceConfig {
        shards: 2,
        queue_capacity: 2,
        tenant_pending_cap: 10_000,
        retrain_batch_max: 1,
        retrain_workers: 1,
        ..ServiceConfig::default()
    });
    let tpl = template(50.0);
    let slow = run_with_error(&tpl, 500.0);
    service.register_tenant("hog", tpl).unwrap();

    let mut accepted = 0u64;
    let mut queue_full = 0u64;
    for _ in 0..200 {
        match service.report_run("hog", slow.clone()) {
            Ok(()) => accepted += 1,
            Err(e @ ServiceError::QueueFull { capacity }) => {
                assert_eq!(capacity, 2, "reports the per-shard capacity");
                assert!(e.is_retryable());
                queue_full += 1;
            }
            Err(other) => panic!("expected QueueFull, got {other}"),
        }
    }
    assert!(
        queue_full > 0,
        "a 2-slot queue must shed a 200-report burst"
    );
    assert!(accepted > 0, "some reports must get through");

    service.flush();
    let ts = service.tenant_stats("hog").unwrap();
    assert_eq!(
        ts.rejections, queue_full,
        "every shed increments the counter"
    );
    assert_eq!(ts.reports_enqueued, accepted);
    assert_eq!(ts.reports_applied, accepted);
    assert_eq!(ts.pending_reports, 0);
}

#[test]
fn unknown_tenant_and_double_register_are_typed() {
    let service = SmartpickService::with_defaults();
    let tpl = template(50.0);
    let query = tpcds::query(82, 100.0).unwrap();

    // Unknown tenant: predict, determine, report, stats all reject.
    assert!(matches!(
        service.predict("ghost", &PredictionRequest::new(query.clone(), 1)),
        Err(ServiceError::UnknownTenant(_))
    ));
    assert!(matches!(
        service.determine("ghost", &query, 1),
        Err(ServiceError::UnknownTenant(_))
    ));
    assert!(matches!(
        service.report_run("ghost", run_with_error(&tpl, 0.0)),
        Err(ServiceError::UnknownTenant(_))
    ));
    assert!(matches!(
        service.tenant_stats("ghost"),
        Err(ServiceError::UnknownTenant(_))
    ));

    // Double registration is rejected and is not retryable.
    service.register_fork("acme", &tpl, 1).unwrap();
    match service.register_fork("acme", &tpl, 2) {
        Err(e @ ServiceError::TenantExists(_)) => assert!(!e.is_retryable()),
        other => panic!("expected TenantExists, got {other:?}"),
    }
    // The rejected registration must not have clobbered the original.
    assert_eq!(service.tenants(), vec!["acme".to_owned()]);
    assert!(service
        .predict("acme", &PredictionRequest::new(query, 3))
        .is_ok());
}

#[test]
fn shutdown_with_pending_reports_drains_deterministically() {
    let mut service = SmartpickService::new(ServiceConfig {
        shards: 2,
        queue_capacity: 256,
        tenant_pending_cap: 128,
        retrain_batch_max: 4,
        retrain_workers: 2,
        ..ServiceConfig::default()
    });
    let tpl = template(50.0);
    let fast = run_with_error(&tpl, 0.0);
    service.register_tenant("t", tpl).unwrap();

    const REPORTS: u64 = 32;
    for _ in 0..REPORTS {
        service.report_run("t", fast.clone()).unwrap();
    }
    // Shutdown must drain: everything accepted before the close is
    // applied, nothing is silently dropped.
    service.shutdown();
    let ts = service.tenant_stats("t").unwrap();
    assert_eq!(ts.reports_enqueued, REPORTS);
    assert_eq!(ts.reports_applied, REPORTS, "accepted reports are drained");
    assert_eq!(ts.pending_reports, 0);
    assert_eq!(service.queue_depth(), 0);

    // After shutdown every write path reports Stopped...
    assert!(matches!(
        service.report_run("t", fast.clone()),
        Err(ServiceError::Stopped)
    ));
    assert!(!service.flush());
    // ...and reads still serve from the last published snapshot.
    let query = tpcds::query(82, 100.0).unwrap();
    assert!(service
        .predict("t", &PredictionRequest::new(query, 9))
        .is_ok());
    // Idempotent.
    service.shutdown();
}

#[test]
fn per_shard_stats_expose_parallel_workers() {
    let service = SmartpickService::new(ServiceConfig {
        shards: 4,
        queue_capacity: 256,
        tenant_pending_cap: 64,
        retrain_batch_max: 8,
        retrain_workers: 4,
        ..ServiceConfig::default()
    });
    let tpl = template(50.0);
    let fast = run_with_error(&tpl, 0.0);
    // Register enough tenants that at least two of the four shards get
    // one (16 over 4 shards; all on one shard would need a 4^-15 fluke
    // of the fixed hash, i.e. deterministically impossible here).
    let tenants: Vec<String> = (0..16).map(|i| format!("tenant-{i}")).collect();
    for (i, t) in tenants.iter().enumerate() {
        service.register_fork(t, &tpl, i as u64).unwrap();
    }

    let mut expected_per_shard = vec![0u64; 4];
    for (i, t) in tenants.iter().enumerate() {
        let shard = service.tenant_stats(t).unwrap().worker_shard;
        assert!(shard < 4, "worker_shard must index a configured worker");
        for _ in 0..=(i % 3) {
            service.report_run(t, fast.clone()).unwrap();
            expected_per_shard[shard] += 1;
        }
    }
    assert!(service.flush());

    let stats = service.stats();
    assert_eq!(stats.worker_shards.len(), 4);
    let applied: Vec<u64> = stats
        .worker_shards
        .iter()
        .map(|s| s.reports_applied)
        .collect();
    assert_eq!(
        applied, expected_per_shard,
        "each report is applied by exactly the worker its tenant hashes to"
    );
    assert!(
        applied.iter().filter(|&&a| a > 0).count() >= 2,
        "distinct tenants' reports must be applied by distinct workers: {applied:?}"
    );
    assert_eq!(
        applied.iter().sum::<u64>(),
        stats.reports_applied,
        "per-shard applies sum to the service total"
    );
    for shard in &stats.worker_shards {
        assert_eq!(shard.depth, 0, "flushed: {shard:?}");
    }
    assert_eq!(stats.queue_depth, 0);

    // Snapshot age is a live gauge; sanity-check it ticks.
    let ts = service.tenant_stats(&tenants[0]).unwrap();
    assert!(ts.snapshot_age < Duration::from_secs(3600));
}
