//! # smartpick-service
//!
//! **smartpickd**: a concurrent, multi-tenant, in-process prediction
//! service over [`smartpick_core`].
//!
//! The paper ships Workload Prediction as a standalone server other
//! serverless data-analytics systems call over RPC (§5), with an
//! independent monitor thread retraining the model in the background
//! (§4.2). `smartpick_core::Smartpick` reproduces the single-tenant
//! logic but its `submit` takes `&mut self` — one caller owns the whole
//! driver. This crate adds the service layer that many threads can
//! hammer concurrently:
//!
//! * [`service`] — the [`SmartpickService`] façade and its
//!   [`ServiceConfig`].
//! * `registry` *(private)* — the sharded tenant registry: N shards of
//!   `parking_lot::RwLock<HashMap<TenantId, slot>>`, hash-routed, so
//!   tenant lookup scales without a global lock.
//! * [`worker`] — the batched update queues and background retrain
//!   workers (the §4.2 monitor thread, made real and sharded by tenant
//!   hash); [`CompletedRun`] is the unit of feedback.
//! * `queue` *(private)* — the bounded MPSC queues providing
//!   service-wide backpressure, one shard per retrain worker.
//! * `residency` *(private)* — tiered tenant residency: with
//!   [`ServiceConfig::max_resident_tenants`] /
//!   [`ServiceConfig::idle_evict_after`] set, a background sweep evicts
//!   idle / excess tenants to their durable snapshots and the first
//!   subsequent touch rehydrates them transparently (single-flight per
//!   tenant), so total registered tenants can far exceed resident ones.
//! * [`stats`] — the public stats shapes ([`ServiceStats`],
//!   [`TenantStats`], [`WorkerShardStats`]) over `smartpick_obs`-backed
//!   counters; per-tenant counters live under `tenant.<id>.*` and
//!   service totals under `service.*` in the shared metrics registry.
//! * [`error`] — typed [`ServiceError`] rejections (admission control
//!   rejections are marked retryable).
//! * [`persist`] — the durability wiring over `smartpick_store`:
//!   [`PersistenceConfig`], per-shard WAL appends on the worker path,
//!   periodic snapshot persistence, and the crash-recovery pass behind
//!   [`SmartpickService::open`]. The read path never touches it.
//!
//! Observability is built in: every counter lives in a shared
//! [`smartpick_obs::Observability`] bundle, structured events go to its
//! bounded ring, [`SmartpickService::scrape`] returns the lot as one
//! versioned envelope, and [`SmartpickService::health`] answers
//! liveness/readiness. Retrain workers run under a
//! [`smartpick_obs::Supervisor`] with a configurable restart policy —
//! a panicked worker's in-flight batch is re-queued before the restart,
//! so accepted feedback survives worker crashes.
//!
//! Reads are **snapshot-based**: each tenant publishes an immutable
//! `Arc<WorkloadPredictor>`; `predict`/`determine` clone the `Arc` and
//! run the whole RF+BO search with no lock held, so predictions never
//! block behind a retrain. Writes are **batched and sharded**:
//! completed-run reports flow through bounded tenant-hash-sharded queues
//! to N worker threads that apply them per tenant copy-on-write and
//! republish the snapshot — a tenant's reports stay FIFO on its shard
//! while distinct tenants retrain in parallel.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
// Clippy agrees with smartpick-lint's panic-free-server-paths rule:
// non-test code must not panic; exceptions carry an explicit
// `#[allow]` next to their `lint:allow` so both tools share one list.
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod error;
pub mod persist;
mod queue;
mod registry;
mod residency;
pub mod service;
pub mod stats;
pub mod worker;

pub use error::ServiceError;
pub use persist::PersistenceConfig;
pub use service::{FlushOutcome, ServiceConfig, SmartpickService};
// The store's fsync knob is part of `PersistenceConfig`'s surface.
pub use smartpick_store::FsyncPolicy;
pub use stats::{LatencyHistogram, LatencySummary, ServiceStats, TenantStats, WorkerShardStats};
pub use worker::CompletedRun;
