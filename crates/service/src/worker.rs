//! The background retrain workers — the paper's §4.2 "independent monitor
//! thread", made real, sharded, and supervised.
//!
//! The service runs N worker threads ([`crate::ServiceConfig`]'s
//! `retrain_workers`); each owns one tenant-hash-sharded slice of the
//! update queue and drains it in batches, groups completed-run reports by
//! owning tenant, applies each batch to that tenant's driver under its
//! (per-tenant) mutex, and republishes the tenant's prediction snapshot
//! once per batch. A tenant's reports always land on the same shard (same
//! hash routing as the registry), so per-tenant ordering is preserved
//! while distinct tenants retrain in parallel. Readers never wait on any
//! of this: they predict against the snapshot published by the previous
//! batch.
//!
//! ## Crash safety
//!
//! Workers run under the obs [`Supervisor`]: if one panics, the
//! supervisor restarts it per the configured restart policy. The worker's
//! side of that contract is *zero lost reports*: every drained message
//! sits in a `BatchRescue` guard (private) and is only marked consumed after its
//! apply (or ack) completes, so a panic mid-batch re-queues the unapplied
//! tail at the *front* of the shard queue, in order — the restarted
//! worker resumes exactly where its predecessor died. Semantics are
//! at-least-once: a report whose apply had already mutated the driver
//! when the panic hit may be applied again after restart.
//!
//! [`Supervisor`]: smartpick_obs::Supervisor

use std::sync::atomic::Ordering;
use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::time::Instant;

use smartpick_core::persist::DriverState;
use smartpick_core::wp::Determination;
use smartpick_engine::{QueryProfile, RunReport};
use smartpick_obs::{event, EventKind, Observability};
use smartpick_store::wal::WalPayload;
use smartpick_store::{Snapshot, WalRecord};

use crate::persist::WorkerPersist;
use crate::queue::BoundedQueue;
use crate::registry::TenantState;
use crate::stats::{ShardCounters, TenantCounters};

/// One completed run a client (or the service's own `submit`) feeds back
/// into the training loop.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CompletedRun {
    /// The query that ran.
    pub query: QueryProfile,
    /// The determination it ran under.
    pub determination: Determination,
    /// What actually happened.
    pub report: RunReport,
}

/// A queued unit of worker work.
#[derive(Debug)]
pub(crate) enum WorkerMsg {
    /// Apply one completed run to its tenant.
    Job {
        /// The owning tenant (resolved at enqueue time, so the worker
        /// never touches the registry and deregistered tenants still get
        /// their in-flight reports applied).
        tenant: Arc<TenantState>,
        /// The tenant-scoped run id assigned at enqueue time. Stable
        /// across a `BatchRescue` re-queue, so a report that is WAL-
        /// appended twice around a worker panic deduplicates at replay.
        run_id: u64,
        /// The run to apply.
        run: Box<CompletedRun>,
    },
    /// Ack once every message enqueued before this one has been applied.
    Flush(SyncSender<()>),
    /// Panic the worker that dequeues this — the fault-injection message
    /// behind [`crate::SmartpickService::poison_worker`]. Marked consumed
    /// *before* the panic so a restarted worker does not die again on the
    /// same message.
    Poison,
}

/// Everything one worker thread needs besides its queue shard.
#[derive(Debug, Clone)]
pub(crate) struct WorkerCtx {
    /// This worker's shard index (for events).
    pub(crate) shard: usize,
    /// This shard's registry-backed counters.
    pub(crate) counters: Arc<ShardCounters>,
    /// The service-wide totals, incremented alongside tenant counters.
    pub(crate) totals: Arc<TenantCounters>,
    /// The shared observability bundle (events).
    pub(crate) obs: Arc<Observability>,
    /// The service epoch `published_at_us`/progress stamps are relative
    /// to.
    pub(crate) epoch: Instant,
    /// The durability layer, when the service was opened over a store:
    /// this shard's WAL handle plus the snapshot/compaction knobs.
    /// `None` runs the classic in-memory-only worker.
    pub(crate) persist: Option<Arc<WorkerPersist>>,
}

/// The worker loop: runs until its queue shard is closed and drained.
pub(crate) fn run_worker(queue: Arc<BoundedQueue<WorkerMsg>>, batch_max: usize, ctx: WorkerCtx) {
    while let Some(first) = queue.pop() {
        let mut rescue = BatchRescue::new(&queue);
        rescue.admit(first);
        for msg in queue.drain_up_to(batch_max.saturating_sub(1)) {
            rescue.admit(msg);
        }
        ctx.counters.batches.inc();
        process_batch(&mut rescue, &ctx);
        ctx.counters
            .mark_progress(ctx.epoch.elapsed().as_micros() as u64);
    }
}

/// Holds a drained batch so a worker panic loses nothing: slots are
/// marked consumed one by one as they are applied/acked, and the `Drop`
/// impl re-queues whatever is left — in order, at the front of the shard
/// queue — if (and only if) the thread is unwinding.
#[derive(Debug)]
struct BatchRescue<'q> {
    queue: &'q BoundedQueue<WorkerMsg>,
    slots: Vec<Option<WorkerMsg>>,
}

impl<'q> BatchRescue<'q> {
    fn new(queue: &'q BoundedQueue<WorkerMsg>) -> Self {
        BatchRescue {
            queue,
            slots: Vec::new(),
        }
    }

    fn admit(&mut self, msg: WorkerMsg) {
        self.slots.push(Some(msg));
    }

    /// Marks slot `i` handled and takes its message.
    fn consume(&mut self, i: usize) -> Option<WorkerMsg> {
        self.slots.get_mut(i)?.take()
    }
}

impl Drop for BatchRescue<'_> {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        let unhandled: Vec<WorkerMsg> = self.slots.iter_mut().filter_map(|s| s.take()).collect();
        self.queue.requeue_front(unhandled);
    }
}

/// Applies one drained batch: poison check, group by tenant, apply each
/// group under its driver lock, republish snapshots, ack flushes.
fn process_batch(rescue: &mut BatchRescue<'_>, ctx: &WorkerCtx) {
    // Poison first: the panic must not take any of the batch's real work
    // with it — everything still unconsumed is requeued by the rescue
    // guard, and the poison slot itself is consumed up front so the
    // restarted worker does not re-panic on it.
    if let Some(p) = rescue
        .slots
        .iter()
        .position(|s| matches!(s, Some(WorkerMsg::Poison)))
    {
        rescue.consume(p);
        #[allow(clippy::panic)] // mirrored by the lint:allow below
        {
            // lint:allow(panic-free-server-paths, reason = "deliberate fault injection: WorkerMsg::Poison exists only for poison_worker() supervision tests and the supervisor is built to catch exactly this panic")
            panic!("retrain worker poisoned via poison_worker()");
        }
    }

    // Group job slots by tenant, preserving per-tenant FIFO order.
    let mut groups: Vec<(Arc<TenantState>, Vec<usize>)> = Vec::new();
    let mut flushes: Vec<usize> = Vec::new();
    for (i, slot) in rescue.slots.iter().enumerate() {
        match slot {
            Some(WorkerMsg::Job { tenant, .. }) => {
                match groups.iter_mut().find(|(t, _)| Arc::ptr_eq(t, tenant)) {
                    Some((_, idxs)) => idxs.push(i),
                    None => groups.push((Arc::clone(tenant), vec![i])),
                }
            }
            Some(WorkerMsg::Flush(_)) => flushes.push(i),
            Some(WorkerMsg::Poison) | None => {}
        }
    }

    for (tenant, idxs) in groups {
        apply_group(&tenant, &idxs, rescue, ctx);
    }

    // Jobs enqueued before each flush are now applied (FIFO queue, whole
    // batch processed above), so the acks are safe. Consume before
    // sending: an ack is a promise already kept, not work to redo after
    // a panic.
    for i in flushes {
        if let Some(WorkerMsg::Flush(ack)) = rescue.consume(i) {
            let _ = ack.send(());
        }
    }
}

/// Applies one tenant's slots under its driver lock, then republishes the
/// snapshot exactly once and emits the retrain events.
///
/// With persistence configured the order is WAL-first: every report in
/// the group is appended (and synced per policy) *before* any apply
/// mutates the driver, so an accepted report is durable before the crash
/// window opens. A worker panic between append and apply replays the
/// record at recovery; a panic after apply re-appends it via the rescue
/// re-queue — both collapse to exactly-once because replay deduplicates
/// by run id. The commit record and any due snapshot persist happen
/// after the publish, off the driver lock.
fn apply_group(
    tenant: &Arc<TenantState>,
    idxs: &[usize],
    rescue: &mut BatchRescue<'_>,
    ctx: &WorkerCtx,
) {
    let started = Instant::now();
    ctx.obs.events().publish(
        event(EventKind::RetrainStarted)
            .tenant(&tenant.id)
            .shard(ctx.shard),
    );
    if let Some(persist) = ctx.persist.as_deref() {
        wal_append_reports(persist, tenant, idxs, rescue, ctx);
    }
    let mut applied = 0u64;
    let mut retrains = 0u64;
    let mut consumed = 0u64;
    let mut exported: Option<DriverState> = None;
    {
        let mut driver = tenant.driver.lock();
        for &i in idxs {
            let (outcome, run_id) = match rescue.slots.get(i) {
                Some(Some(WorkerMsg::Job { run, run_id, .. })) => (
                    driver.apply_report(&run.query, &run.determination, &run.report),
                    *run_id,
                ),
                _ => continue,
            };
            match outcome {
                Ok(retrain) => {
                    applied += 1;
                    tenant.counters.reports_applied.inc();
                    ctx.totals.reports_applied.inc();
                    ctx.counters.reports_applied.inc();
                    if retrain.is_some() {
                        retrains += 1;
                        tenant.counters.retrains.inc();
                        ctx.totals.retrains.inc();
                        ctx.counters.retrains.inc();
                    }
                }
                Err(_) => {
                    // A failed apply (e.g. a retrain hiccup) must not take
                    // the worker down; it is surfaced through the stats
                    // instead.
                    tenant.counters.apply_failures.inc();
                    ctx.totals.apply_failures.inc();
                }
            }
            // The watermark tracks consumption (the record will never be
            // offered again), not apply success — replay treats a
            // deterministic apply failure the same way.
            tenant
                .applied_watermark
                .fetch_max(run_id, Ordering::Relaxed);
            consumed += 1;
            tenant.counters.pending.fetch_sub(1, Ordering::Relaxed);
            rescue.consume(i);
        }
        if let Some(persist) = ctx.persist.as_deref() {
            if consumed > 0 {
                let since = tenant
                    .applied_since_persist
                    .fetch_add(consumed, Ordering::Relaxed)
                    + consumed;
                if since >= persist.snapshot_every {
                    // Export under the lock so the persisted state and the
                    // about-to-publish snapshot are the same model.
                    exported = Some(driver.export_state());
                    tenant.applied_since_persist.store(0, Ordering::Relaxed);
                }
            }
        }
        let snapshot = driver.snapshot();
        drop(driver);
        let now_us = ctx.epoch.elapsed().as_micros() as u64;
        tenant.publish_snapshot(snapshot, now_us);
        // An actively-reporting tenant counts as touched: the residency
        // sweep's LRU clock should not evict a tenant whose model is
        // still absorbing feedback. (While the batch was pending, the
        // pending counter pinned it hot outright.)
        tenant.last_touch_us.store(now_us, Ordering::Relaxed);
    }
    ctx.obs.events().publish(
        event(EventKind::SnapshotPublished)
            .tenant(&tenant.id)
            .shard(ctx.shard),
    );
    if let Some(persist) = ctx.persist.as_deref() {
        if consumed > 0 {
            persist_after_publish(persist, tenant, exported, ctx);
        }
    }
    ctx.obs.events().publish(
        event(EventKind::RetrainFinished)
            .tenant(&tenant.id)
            .shard(ctx.shard)
            .duration(started.elapsed())
            .detail(format!(
                "{applied} reports applied, {retrains} retrains fired"
            )),
    );
}

/// Appends the group's reports to the shard WAL and syncs per policy.
/// Failures degrade: one `StoreDegraded` event, and the batch proceeds
/// non-durable (availability over durability — the query results behind
/// these reports were already returned).
fn wal_append_reports(
    persist: &WorkerPersist,
    tenant: &Arc<TenantState>,
    idxs: &[usize],
    rescue: &BatchRescue<'_>,
    ctx: &WorkerCtx,
) {
    // A deregistered tenant's records would be dead on arrival (replay
    // only visits tenants with a store directory); skip the writes.
    if tenant.defunct.load(Ordering::SeqCst) {
        return;
    }
    let mut wal = persist.wal.lock();
    let Some(writer) = wal.as_mut() else {
        return;
    };
    let before = writer.bytes_written();
    let mut appended = 0u64;
    for &i in idxs {
        let Some(Some(WorkerMsg::Job { run, run_id, .. })) = rescue.slots.get(i) else {
            continue;
        };
        let record = WalRecord {
            tenant: tenant.id.clone(),
            epoch: tenant.epoch,
            payload: WalPayload::Report {
                run_id: *run_id,
                run_json: serde_json::to_string(run.as_ref()).unwrap_or_default(),
            },
        };
        match writer.append(&record.encode_payload()) {
            Ok(()) => appended += 1,
            Err(e) => {
                ctx.obs.events().publish(
                    event(EventKind::StoreDegraded)
                        .tenant(&tenant.id)
                        .shard(ctx.shard)
                        .detail(format!("WAL append failed: {e}")),
                );
                break;
            }
        }
    }
    if let Err(e) = writer.sync() {
        ctx.obs.events().publish(
            event(EventKind::StoreDegraded)
                .shard(ctx.shard)
                .detail(format!("WAL sync failed: {e}")),
        );
    }
    persist.metrics.wal_records_appended.add(appended);
    persist
        .metrics
        .wal_bytes_written
        .add(writer.bytes_written().saturating_sub(before));
}

/// The post-publish durability tail: commit record, due snapshot
/// persist, and (after a snapshot moved the floors) a compaction pass.
///
/// The ghost-tenant guard lives here: a worker holds its own
/// `Arc<TenantState>`, so it can reach this point for a tenant
/// `deregister_tenant` has *already* removed — and the snapshot persist
/// below recreates `tenants/<id>/`, resurrecting the tenant at the next
/// open. Deregistration stamps `defunct` before removing the store
/// directory; the snapshot write goes through
/// [`TenantFiles::persist_unless_defunct`], which re-checks the stamp
/// inside the tenant's file lock — the write either precedes the
/// teardown's removal (and is deleted with the directory) or is skipped,
/// so it can never land after the removal and resurrect the tenant.
/// Persisting for a merely *evicted* (retired, non-defunct) tenant stays
/// allowed: generation is monotone and the bytes equal what eviction
/// wrote.
///
/// [`TenantFiles::persist_unless_defunct`]: crate::persist::TenantFiles::persist_unless_defunct
fn persist_after_publish(
    persist: &WorkerPersist,
    tenant: &Arc<TenantState>,
    exported: Option<DriverState>,
    ctx: &WorkerCtx,
) {
    if tenant.defunct.load(Ordering::SeqCst) {
        return;
    }
    let generation = tenant.generation.load(Ordering::Relaxed);
    let watermark = tenant.applied_watermark.load(Ordering::Relaxed);
    {
        let mut wal = persist.wal.lock();
        if let Some(writer) = wal.as_mut() {
            let before = writer.bytes_written();
            let record = WalRecord {
                tenant: tenant.id.clone(),
                epoch: tenant.epoch,
                payload: WalPayload::Commit {
                    generation,
                    watermark,
                },
            };
            let appended = writer
                .append(&record.encode_payload())
                .and_then(|()| writer.sync());
            if let Err(e) = appended {
                ctx.obs.events().publish(
                    event(EventKind::StoreDegraded)
                        .tenant(&tenant.id)
                        .shard(ctx.shard)
                        .detail(format!("WAL commit failed: {e}")),
                );
            } else {
                persist.metrics.wal_records_appended.inc();
                persist
                    .metrics
                    .wal_bytes_written
                    .add(writer.bytes_written().saturating_sub(before));
            }
        }
    }
    let Some(state) = exported else {
        return;
    };
    let snap = Snapshot {
        tenant: tenant.id.clone(),
        epoch: tenant.epoch,
        generation,
        watermark,
        state,
    };
    match persist
        .files
        .persist_unless_defunct(&persist.store, &snap, &tenant.defunct)
    {
        // Deregistration landed since the check at the top; its removal
        // owns the directory and the write was skipped under the file
        // lock.
        Ok(None) => return,
        Ok(Some(bytes)) => {
            persist.metrics.snapshots_persisted.inc();
            persist.metrics.snapshot_bytes_written.add(bytes);
            ctx.obs.events().publish(
                event(EventKind::SnapshotPersisted)
                    .tenant(&tenant.id)
                    .shard(ctx.shard)
                    .detail(format!("generation {generation}, {bytes} bytes")),
            );
        }
        Err(e) => {
            ctx.obs.events().publish(
                event(EventKind::StoreDegraded)
                    .tenant(&tenant.id)
                    .shard(ctx.shard)
                    .detail(format!("snapshot persist failed: {e}")),
            );
            return;
        }
    }
    // The snapshot just raised this tenant's floor; if the shard WAL has
    // grown past the threshold, rewrite it. The append handle must be
    // closed across the rewrite (the file is replaced) and reopened
    // after.
    let mut wal = persist.wal.lock();
    let over = wal
        .as_ref()
        .is_some_and(|w| w.file_len() > persist.compact_threshold_bytes);
    if !over {
        return;
    }
    *wal = None;
    match persist.store.compact_wal(ctx.shard) {
        Ok(stats) => {
            persist.metrics.compactions.inc();
            ctx.obs
                .events()
                .publish(
                    event(EventKind::WalCompacted)
                        .shard(ctx.shard)
                        .detail(format!(
                            "{} records kept, {} dropped; {} -> {} bytes",
                            stats.kept, stats.dropped, stats.bytes_before, stats.bytes_after
                        )),
                );
        }
        Err(e) => {
            ctx.obs.events().publish(
                event(EventKind::StoreDegraded)
                    .shard(ctx.shard)
                    .detail(format!("WAL compaction failed: {e}")),
            );
        }
    }
    match persist.store.open_wal(ctx.shard, persist.fsync) {
        Ok(writer) => *wal = Some(writer),
        Err(e) => {
            ctx.obs.events().publish(
                event(EventKind::StoreDegraded)
                    .shard(ctx.shard)
                    .detail(format!("WAL reopen after compaction failed: {e}")),
            );
        }
    }
}
