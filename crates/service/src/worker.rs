//! The background retrain workers — the paper's §4.2 "independent monitor
//! thread", made real and sharded.
//!
//! The service runs N worker threads ([`crate::ServiceConfig`]'s
//! `retrain_workers`); each owns one tenant-hash-sharded slice of the
//! update queue and drains it in batches, groups completed-run reports by
//! owning tenant, applies each batch to that tenant's driver under its
//! (per-tenant) mutex, and republishes the tenant's prediction snapshot
//! once per batch. A tenant's reports always land on the same shard (same
//! hash routing as the registry), so per-tenant ordering is preserved
//! while distinct tenants retrain in parallel. Readers never wait on any
//! of this: they predict against the snapshot published by the previous
//! batch.

use std::sync::atomic::Ordering;
use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::time::Instant;

use smartpick_core::wp::Determination;
use smartpick_engine::{QueryProfile, RunReport};

use crate::queue::BoundedQueue;
use crate::registry::TenantState;
use crate::stats::ShardCounters;

/// One completed run a client (or the service's own `submit`) feeds back
/// into the training loop.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CompletedRun {
    /// The query that ran.
    pub query: QueryProfile,
    /// The determination it ran under.
    pub determination: Determination,
    /// What actually happened.
    pub report: RunReport,
}

/// A queued unit of worker work.
#[derive(Debug)]
pub(crate) enum WorkerMsg {
    /// Apply one completed run to its tenant.
    Job {
        /// The owning tenant (resolved at enqueue time, so the worker
        /// never touches the registry and deregistered tenants still get
        /// their in-flight reports applied).
        tenant: Arc<TenantState>,
        /// The run to apply.
        run: Box<CompletedRun>,
    },
    /// Ack once every message enqueued before this one has been applied.
    Flush(SyncSender<()>),
}

/// The worker loop: runs until its queue shard is closed and drained.
pub(crate) fn run_worker(
    queue: Arc<BoundedQueue<WorkerMsg>>,
    batch_max: usize,
    epoch: Instant,
    shard: Arc<ShardCounters>,
) {
    while let Some(first) = queue.pop() {
        let mut batch = vec![first];
        batch.extend(queue.drain_up_to(batch_max.saturating_sub(1)));
        shard.batches.fetch_add(1, Ordering::Relaxed);

        // Group jobs by tenant, preserving per-tenant FIFO order.
        let mut flushes: Vec<SyncSender<()>> = Vec::new();
        let mut groups: Vec<(Arc<TenantState>, Vec<Box<CompletedRun>>)> = Vec::new();
        for msg in batch {
            match msg {
                WorkerMsg::Job { tenant, run } => {
                    match groups.iter_mut().find(|(t, _)| Arc::ptr_eq(t, &tenant)) {
                        Some((_, runs)) => runs.push(run),
                        None => groups.push((tenant, vec![run])),
                    }
                }
                WorkerMsg::Flush(ack) => flushes.push(ack),
            }
        }

        for (tenant, runs) in groups {
            apply_batch(&tenant, &runs, epoch, &shard);
        }

        // Jobs enqueued before each flush are now applied (FIFO queue,
        // whole batch processed above), so the acks are safe.
        for ack in flushes {
            let _ = ack.send(());
        }
    }
}

/// Applies one tenant's batch under its driver lock, then republishes the
/// snapshot exactly once.
fn apply_batch(
    tenant: &TenantState,
    runs: &[Box<CompletedRun>],
    epoch: Instant,
    shard: &ShardCounters,
) {
    let mut driver = tenant.driver.lock();
    for run in runs {
        match driver.apply_report(&run.query, &run.determination, &run.report) {
            Ok(retrain) => {
                tenant
                    .counters
                    .reports_applied
                    .fetch_add(1, Ordering::Relaxed);
                shard.reports_applied.fetch_add(1, Ordering::Relaxed);
                if retrain.is_some() {
                    tenant.counters.retrains.fetch_add(1, Ordering::Relaxed);
                    shard.retrains.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                // A failed apply (e.g. a retrain hiccup) must not take the
                // worker down; it is surfaced through the stats instead.
                tenant
                    .counters
                    .apply_failures
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        tenant.counters.pending.fetch_sub(1, Ordering::Relaxed);
    }
    let snapshot = driver.snapshot();
    drop(driver);
    tenant.publish_snapshot(snapshot, epoch.elapsed().as_micros() as u64);
}
