//! Tiered tenant residency: the eviction sweep and the rehydration path.
//!
//! With [`crate::ServiceConfig::max_resident_tenants`] /
//! [`crate::ServiceConfig::idle_evict_after`] set (both require
//! persistence), the supervisor's poll loop runs [`ResidencyCtl::sweep`]:
//! an idle pass that evicts tenants untouched past the idle bound, then a
//! capacity pass that orders resident tenants by last touch (LRU) and
//! evicts the least-recently-used excess over the cap. Eviction persists
//! a final snapshot and drops the tenant's forest + driver, leaving only
//! [`ColdMeta`] in the registry slot; the first subsequent touch
//! rehydrates from the newest snapshot through `crates/store`,
//! single-flight per tenant.
//!
//! ## Why eviction cannot lose a report
//!
//! The evictor and the enqueuer run a Dekker-style handshake over two
//! `SeqCst` flags: the enqueuer bumps `counters.pending` *then* reads
//! `retired`; the evictor stores `retired = true` *then* reads `pending`.
//! One side always observes the other — either the enqueuer backs out
//! (and retries against the rehydrated state), or the evictor sees
//! pending work and aborts. A tenant with `pending > 0` is **pinned
//! hot**: its retrain worker holds queued reports that must commit
//! against this driver instance. The evictor additionally takes the
//! driver via `try_lock`, so a worker mid-apply is simply skipped this
//! sweep, never blocked.
//!
//! ## Why eviction cannot resurrect a deregistered tenant
//!
//! Every evict-time persist checks the `defunct` stamp before *and after*
//! writing; a deregistration that lands mid-write is compensated by
//! removing the tenant directory again. See `docs/PERSISTENCE.md`
//! ("Residency").

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use smartpick_core::driver::Smartpick;
use smartpick_obs::{event, Counter, EventKind, Gauge, LatencyHistogram, Observability};
use smartpick_store::Snapshot;

use crate::error::ServiceError;
use crate::persist::ServicePersist;
use crate::registry::{Acquired, ColdMeta, ShardedRegistry, TenantSlot, TenantState};

/// Sweeps are throttled to this interval regardless of the supervisor
/// poll cadence — residency decisions are capacity management, not a hot
/// path.
const SWEEP_INTERVAL_US: u64 = 100_000;

/// The residency controller: owns the eviction policy knobs, the
/// `service.residency.*` metrics, and the rehydration path. One per
/// service, shared with the supervisor's poll hook.
#[derive(Debug)]
pub(crate) struct ResidencyCtl {
    registry: Arc<ShardedRegistry>,
    persist: Option<Arc<ServicePersist>>,
    obs: Arc<Observability>,
    max_resident: Option<usize>,
    idle_evict_after_us: Option<u64>,
    /// The service epoch `last_touch_us` stamps are measured against.
    epoch: Instant,
    evictions: Arc<Counter>,
    rehydrations: Arc<Counter>,
    rehydrate_failures: Arc<Counter>,
    resident_gauge: Arc<Gauge>,
    rehydrate_latency: Arc<LatencyHistogram>,
    last_sweep_us: AtomicU64,
}

impl ResidencyCtl {
    /// Builds the controller (always — metrics are registered even when
    /// no limits are configured, so dashboards see zeros instead of
    /// holes). Run after recovery so the gauge starts at the recovered
    /// resident count.
    pub(crate) fn new(
        registry: Arc<ShardedRegistry>,
        persist: Option<Arc<ServicePersist>>,
        obs: Arc<Observability>,
        max_resident: Option<usize>,
        idle_evict_after_us: Option<u64>,
        epoch: Instant,
    ) -> Self {
        let metrics = obs.metrics();
        let resident_gauge = metrics.gauge("service.residency.resident_tenants");
        resident_gauge.set(registry.resident_count() as i64);
        ResidencyCtl {
            evictions: metrics.counter("service.residency.evictions"),
            rehydrations: metrics.counter("service.residency.rehydrations"),
            rehydrate_failures: metrics.counter("service.residency.rehydrate_failures"),
            rehydrate_latency: metrics.histogram("service.residency.rehydrate_latency"),
            resident_gauge,
            registry,
            persist,
            obs,
            max_resident,
            idle_evict_after_us,
            epoch,
            last_sweep_us: AtomicU64::new(0),
        }
    }

    /// Whether any eviction policy is configured (drives supervisor hook
    /// installation).
    pub(crate) fn sweeps_enabled(&self) -> bool {
        self.max_resident.is_some() || self.idle_evict_after_us.is_some()
    }

    /// Limits configured but no working store: eviction cannot run
    /// (nothing durable to rehydrate from), so residency is paused —
    /// surfaced as a health reason.
    pub(crate) fn paused(&self) -> bool {
        self.sweeps_enabled() && self.persist.is_none()
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Re-derives the resident gauge from the registry (scrape-time
    /// truth; transitions also update it incrementally).
    pub(crate) fn refresh_gauge(&self) {
        self.resident_gauge
            .set(self.registry.resident_count() as i64);
    }

    /// A registration added a hot tenant.
    pub(crate) fn note_registered(&self) {
        self.resident_gauge.inc();
    }

    /// A deregistration dropped a hot tenant.
    pub(crate) fn note_dropped_hot(&self) {
        self.resident_gauge.dec();
    }

    // ---------------------------------------------------------------
    // Resolution (the read side)
    // ---------------------------------------------------------------

    /// Resolves `tenant` to a servable state, transparently rehydrating
    /// a cold tenant from its newest snapshot (single-flight: concurrent
    /// callers block on the one in-flight load). Stamps the LRU touch
    /// clock.
    pub(crate) fn resolve(&self, tenant: &str) -> Result<Arc<TenantState>, ServiceError> {
        let slot = self.registry.slot(tenant)?;
        let state = match slot.acquire() {
            Acquired::Hot(state) => state,
            Acquired::MustRehydrate(meta) => self.rehydrate(&slot, meta)?,
        };
        state.last_touch_us.store(self.now_us(), Ordering::Relaxed);
        Ok(state)
    }

    /// Loads the newest snapshot back into a hot state. The caller owns
    /// the slot's `Rehydrating` claim; any early return (or panic) must
    /// restore `Cold` so waiters are never stranded — the `AbortOnDrop`
    /// guard does that until the load succeeds.
    fn rehydrate(
        &self,
        slot: &Arc<TenantSlot>,
        meta: ColdMeta,
    ) -> Result<Arc<TenantState>, ServiceError> {
        let mut guard = AbortOnDrop {
            slot,
            meta,
            armed: true,
        };
        // A deregistered slot has no files to load (the store directory
        // is removed); fail as the lookup would have.
        if slot.defunct.load(Ordering::SeqCst) {
            return Err(ServiceError::UnknownTenant(slot.id.clone()));
        }
        let Some(sp) = &self.persist else {
            // Unreachable by construction (Cold requires a persist to
            // have happened), kept as a typed failure instead of a panic.
            return Err(ServiceError::Store("persistence not configured".into()));
        };
        let started = Instant::now();
        let loaded = sp
            .store
            .load_snapshot(&slot.id)
            .map_err(|e| self.note_rehydrate_failure(slot, format!("snapshot load failed: {e}")))?;
        for name in &loaded.quarantined {
            sp.metrics.snapshots_quarantined.inc();
            self.obs.events().publish(
                event(EventKind::SnapshotQuarantined)
                    .tenant(&slot.id)
                    .detail(format!("{name} failed validation; moved to quarantine/")),
            );
        }
        let snap = loaded.snapshot.ok_or_else(|| {
            self.note_rehydrate_failure(slot, "no snapshot validated at any generation".to_owned())
        })?;
        let driver = Smartpick::from_state(&snap.state).map_err(|e| {
            self.note_rehydrate_failure(slot, format!("snapshot state invalid: {e}"))
        })?;

        let now_us = self.now_us();
        let state = TenantState::new(
            slot.id.clone(),
            driver,
            now_us,
            Arc::clone(&slot.counters),
            snap.epoch,
        );
        // Restore the floors. Generation stays monotone across the
        // evict/rehydrate cycle (a worker may have persisted past the
        // evict-time generation; take the max of both records), and run
        // ids issued before eviction — including ids *burned* by queue
        // rejections, which never reach the WAL — are never reissued
        // within the epoch.
        state
            .generation
            .store(snap.generation.max(meta.generation), Ordering::Relaxed);
        state
            .next_run_id
            .store(snap.watermark.max(meta.next_run_id), Ordering::Relaxed);
        state
            .applied_watermark
            .store(snap.watermark, Ordering::Relaxed);
        let state = Arc::new(state);

        guard.armed = false;
        slot.finish_rehydrate(Arc::clone(&state));
        self.resident_gauge.inc();
        self.rehydrations.inc();
        self.rehydrate_latency.record(started.elapsed());
        self.obs.events().publish(
            event(EventKind::TenantRehydrated)
                .tenant(&slot.id)
                .duration(started.elapsed())
                .detail(format!(
                    "generation {}, watermark {}",
                    snap.generation.max(meta.generation),
                    snap.watermark
                )),
        );
        Ok(state)
    }

    /// Counts + reports one failed rehydration and returns the typed
    /// error (the slot goes back to `Cold` via the caller's drop guard,
    /// so the next touch retries the load).
    ///
    /// A load that failed because a concurrent deregistration removed
    /// the files is not a failure at all: deregistration stamps the slot
    /// defunct *before* the removal, so re-checking the stamp here
    /// deterministically separates "tenant torn down under us" (report
    /// it as unknown, like the lookup would have) from genuine store
    /// corruption.
    fn note_rehydrate_failure(&self, slot: &TenantSlot, why: String) -> ServiceError {
        if slot.defunct.load(Ordering::SeqCst) {
            return ServiceError::UnknownTenant(slot.id.clone());
        }
        self.rehydrate_failures.inc();
        self.obs.events().publish(
            event(EventKind::StoreDegraded)
                .tenant(&slot.id)
                .detail(why.clone()),
        );
        ServiceError::Store(why)
    }

    // ---------------------------------------------------------------
    // Eviction (the sweep side)
    // ---------------------------------------------------------------

    /// One residency sweep: the idle pass, then the capacity (LRU) pass.
    /// Called from the supervisor's poll loop; throttled internally, so
    /// the poll cadence does not set the sweep cadence. Never blocks on
    /// a driver lock and never panics.
    pub(crate) fn sweep(&self) {
        let now = self.now_us();
        let last = self.last_sweep_us.load(Ordering::Relaxed);
        if now.saturating_sub(last) < SWEEP_INTERVAL_US {
            return;
        }
        if self
            .last_sweep_us
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            // Another sweeper (e.g. a test driving the sweep directly)
            // won this interval.
            return;
        }
        self.sweep_now();
    }

    /// The sweep body, unthrottled — tests and benches drive this
    /// directly for deterministic scheduling.
    pub(crate) fn sweep_now(&self) {
        let Some(sp) = &self.persist else { return };
        if !self.sweeps_enabled() {
            return;
        }
        let now = self.now_us();

        if let Some(idle_us) = self.idle_evict_after_us {
            for (slot, state) in self.registry.resident() {
                let idle = now.saturating_sub(state.last_touch_us.load(Ordering::Relaxed));
                if idle > idle_us {
                    self.try_evict(sp, &slot, &state, "idle");
                }
            }
        }

        if let Some(max) = self.max_resident {
            let mut resident = self.registry.resident();
            if resident.len() > max {
                // LRU: oldest touch first; evict only the excess.
                resident.sort_by_key(|(_, state)| state.last_touch_us.load(Ordering::Relaxed));
                let excess = resident.len() - max;
                let mut evicted = 0usize;
                for (slot, state) in resident {
                    if evicted >= excess {
                        break;
                    }
                    if self.try_evict(sp, &slot, &state, "capacity") {
                        evicted += 1;
                    }
                }
            }
        }
        self.refresh_gauge();
    }

    /// Operator hook: evict one tenant now, regardless of policy.
    /// `Ok(false)` means the tenant stayed hot (pinned by pending
    /// reports, mid-apply, already cold, or being deregistered).
    pub(crate) fn evict(&self, tenant: &str) -> Result<bool, ServiceError> {
        let Some(sp) = &self.persist else {
            return Err(ServiceError::Store("persistence not configured".into()));
        };
        let slot = self.registry.slot(tenant)?;
        let Some(state) = slot.peek_hot() else {
            return Ok(false);
        };
        Ok(self.try_evict(sp, &slot, &state, "operator"))
    }

    /// Attempts to take one hot tenant cold. Non-blocking and strictly
    /// best-effort: any contention (pending reports, driver mid-apply,
    /// concurrent deregistration, persist failure, slot swapped by a
    /// re-registration) leaves the tenant hot and returns `false`.
    fn try_evict(
        &self,
        sp: &ServicePersist,
        slot: &Arc<TenantSlot>,
        state: &Arc<TenantState>,
        why: &str,
    ) -> bool {
        // Deregistration owns this tenant's teardown.
        if slot.defunct.load(Ordering::SeqCst) || state.defunct.load(Ordering::SeqCst) {
            return false;
        }
        // Pinned: a retrain worker holds queued reports for this state.
        if state.counters.pending.load(Ordering::SeqCst) > 0 {
            return false;
        }
        // The Dekker handshake: publish retirement, then re-check pending.
        // An enqueuer that slipped in between bumped pending first and
        // will now observe `retired` (or we observe its bump here).
        state.retired.store(true, Ordering::SeqCst);
        if state.counters.pending.load(Ordering::SeqCst) > 0 {
            state.retired.store(false, Ordering::SeqCst);
            return false;
        }
        // A worker mid-apply holds the driver; skip, don't wait.
        let Some(driver) = state.driver.try_lock() else {
            state.retired.store(false, Ordering::SeqCst);
            return false;
        };
        let generation = state.generation.load(Ordering::Relaxed);
        let watermark = state.applied_watermark.load(Ordering::Relaxed);
        let next_run_id = state.next_run_id.load(Ordering::Relaxed);
        // A final snapshot is only due if something was applied since
        // the last persist; otherwise the disk already holds exactly
        // this state and eviction is free (the common case for the idle
        // long tail a residency cap exists for).
        if state.applied_since_persist.load(Ordering::Relaxed) > 0 {
            let exported = driver.export_state();
            let snap = Snapshot {
                tenant: state.id.clone(),
                epoch: state.epoch,
                generation,
                watermark,
                state: exported,
            };
            // The defunct stamp is re-checked inside the tenant's file
            // lock: a racing deregistration's removal either runs after
            // this write (deleting it) or the write is skipped.
            match sp
                .files
                .persist_unless_defunct(&sp.store, &snap, &state.defunct)
            {
                Ok(Some(bytes)) => {
                    sp.metrics.snapshots_persisted.inc();
                    sp.metrics.snapshot_bytes_written.add(bytes);
                }
                Ok(None) => {
                    // Deregistration owns the teardown; stay out of it.
                    drop(driver);
                    state.retired.store(false, Ordering::SeqCst);
                    return false;
                }
                Err(e) => {
                    // Can't evict what we can't rehydrate: stay hot.
                    drop(driver);
                    state.retired.store(false, Ordering::SeqCst);
                    self.obs.events().publish(
                        event(EventKind::StoreDegraded)
                            .tenant(&state.id)
                            .detail(format!("evict-time snapshot persist failed: {e}")),
                    );
                    return false;
                }
            }
            state.applied_since_persist.store(0, Ordering::Relaxed);
        } else if state.defunct.load(Ordering::SeqCst) {
            // Deregistration landed since the first check; its teardown
            // owns this tenant.
            drop(driver);
            state.retired.store(false, Ordering::SeqCst);
            return false;
        }
        drop(driver);
        let meta = ColdMeta {
            generation,
            epoch: state.epoch,
            watermark,
            next_run_id,
        };
        if !slot.make_cold(state, meta) {
            // The slot no longer holds this state (deregister +
            // re-register); the orphaned state just dies with our Arc.
            state.retired.store(false, Ordering::SeqCst);
            return false;
        }
        self.resident_gauge.dec();
        self.evictions.inc();
        self.obs
            .events()
            .publish(
                event(EventKind::TenantEvicted)
                    .tenant(&state.id)
                    .detail(format!(
                        "{why}; generation {generation}, watermark {watermark}"
                    )),
            );
        true
    }
}

/// Restores `Cold` if a claimed rehydration unwinds before publishing —
/// waiters blocked in `acquire` must never be stranded on a claim whose
/// owner is gone.
struct AbortOnDrop<'a> {
    slot: &'a TenantSlot,
    meta: ColdMeta,
    armed: bool,
}

impl Drop for AbortOnDrop<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.slot.abort_rehydrate(self.meta);
        }
    }
}
