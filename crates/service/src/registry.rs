//! The sharded tenant registry.
//!
//! Tenants are hash-routed across N independent shards, each a
//! `parking_lot::RwLock<HashMap<...>>`, so registry traffic scales with
//! tenants instead of funnelling through one global lock. Lookups take a
//! shard read lock only long enough to clone the tenant's `Arc` out — no
//! caller ever holds a shard lock across a prediction, execution, or
//! retrain.

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use smartpick_core::driver::Smartpick;
use smartpick_core::rm::ResourceManager;
use smartpick_core::wp::WorkloadPredictor;
use smartpick_obs::MetricsRegistry;

use crate::error::ServiceError;
use crate::stats::TenantCounters;

/// One tenant's live state.
///
/// The read path touches only `snapshot` (an `RwLock` held for the
/// nanoseconds an `Arc` clone takes) and the atomic counters; the
/// `driver` mutex is taken exclusively by the retrain worker (and by
/// admin operations like deregistration).
#[derive(Debug)]
pub(crate) struct TenantState {
    /// The tenant id.
    pub(crate) id: String,
    /// The published immutable prediction snapshot readers run against.
    pub(crate) snapshot: RwLock<Arc<WorkloadPredictor>>,
    /// The training-side driver, owned by the retrain worker.
    pub(crate) driver: Mutex<Smartpick>,
    /// Shared execution substrate, callable without the driver lock.
    pub(crate) rm: Arc<ResourceManager>,
    /// The tenant's configured cost–performance knob ε.
    pub(crate) knob: f64,
    /// Hot-path counters, registered under `tenant.<id>.*`.
    pub(crate) counters: TenantCounters,
    /// Snapshots published so far (0 = registration snapshot).
    pub(crate) generation: AtomicU64,
    /// Publication instant, µs since the service epoch.
    pub(crate) published_at_us: AtomicU64,
    /// Whether a `StalenessFlagged` event has been emitted for the
    /// current stale episode (reset on every snapshot republish, so each
    /// episode yields one event, not one per prediction).
    pub(crate) stale_flagged: AtomicBool,
    /// This registration's durability epoch (nanoseconds at registration,
    /// or the recovered snapshot's). Stamped into every snapshot and WAL
    /// record so replay can discard records from an earlier registration
    /// of the same id.
    pub(crate) epoch: u64,
    /// The last run id handed out by `enqueue_report` (ids start at 1;
    /// 0 means "none yet"). Restored to the replay watermark at recovery.
    pub(crate) next_run_id: AtomicU64,
    /// The highest run id a retrain worker has consumed for this tenant —
    /// the watermark stamped into WAL commits and persisted snapshots.
    pub(crate) applied_watermark: AtomicU64,
    /// Reports applied since the last persisted snapshot; drives the
    /// `snapshot_every` persistence cadence.
    pub(crate) applied_since_persist: AtomicU64,
}

impl TenantState {
    pub(crate) fn new(
        id: String,
        driver: Smartpick,
        now_us: u64,
        metrics: &MetricsRegistry,
        epoch: u64,
    ) -> Self {
        let counters = TenantCounters::register(metrics, &format!("tenant.{id}"));
        TenantState {
            snapshot: RwLock::new(driver.snapshot()),
            rm: driver.shared_resource_manager(),
            knob: driver.properties().knob,
            driver: Mutex::new(driver),
            id,
            counters,
            generation: AtomicU64::new(0),
            published_at_us: AtomicU64::new(now_us),
            stale_flagged: AtomicBool::new(false),
            epoch,
            next_run_id: AtomicU64::new(0),
            applied_watermark: AtomicU64::new(0),
            applied_since_persist: AtomicU64::new(0),
        }
    }

    /// Clones the current snapshot out (the lock is held only for the
    /// `Arc` bump).
    pub(crate) fn read_snapshot(&self) -> Arc<WorkloadPredictor> {
        Arc::clone(&self.snapshot.read())
    }

    /// Publishes a fresh snapshot from the driver's current model.
    pub(crate) fn publish_snapshot(&self, snapshot: Arc<WorkloadPredictor>, now_us: u64) {
        *self.snapshot.write() = snapshot;
        self.generation.fetch_add(1, Ordering::Relaxed);
        self.published_at_us.store(now_us, Ordering::Relaxed);
        // A fresh snapshot ends any stale episode; the next one gets its
        // own event.
        self.stale_flagged.store(false, Ordering::Relaxed);
    }
}

/// The tenant hash every sharded structure routes by — the registry's
/// shards and the retrain workers' queue shards use this same function,
/// so "which worker retrains tenant X" is as stable and uniform as
/// "which registry shard holds tenant X".
pub(crate) fn tenant_hash(id: &str) -> u64 {
    let mut hasher = DefaultHasher::new();
    id.hash(&mut hasher);
    hasher.finish()
}

/// One registry shard: an independently locked slice of the tenant map.
type Shard = RwLock<HashMap<String, Arc<TenantState>>>;

/// Hash-routed shards of tenant slots.
#[derive(Debug)]
pub(crate) struct ShardedRegistry {
    shards: Box<[Shard]>,
}

impl ShardedRegistry {
    pub(crate) fn new(shards: usize) -> Self {
        assert!(shards > 0, "at least one shard required");
        ShardedRegistry {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, id: &str) -> &Shard {
        // lint:allow(panic-free-server-paths, reason = "index is modulo shards.len() on the same line")
        &self.shards[(tenant_hash(id) as usize) % self.shards.len()]
    }

    /// Inserts a new tenant; rejects duplicates.
    pub(crate) fn insert(&self, state: TenantState) -> Result<(), ServiceError> {
        match self.shard(&state.id).write().entry(state.id.clone()) {
            Entry::Occupied(_) => Err(ServiceError::TenantExists(state.id)),
            Entry::Vacant(slot) => {
                slot.insert(Arc::new(state));
                Ok(())
            }
        }
    }

    /// Looks a tenant up, cloning its `Arc` out of the shard.
    pub(crate) fn get(&self, id: &str) -> Result<Arc<TenantState>, ServiceError> {
        self.shard(id)
            .read()
            .get(id)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownTenant(id.to_owned()))
    }

    /// Removes a tenant, returning its state.
    pub(crate) fn remove(&self, id: &str) -> Result<Arc<TenantState>, ServiceError> {
        self.shard(id)
            .write()
            .remove(id)
            .ok_or_else(|| ServiceError::UnknownTenant(id.to_owned()))
    }

    /// All tenant ids (sorted, for stable output).
    pub(crate) fn ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Registry mechanics are exercised with a `None`-driver stand-in;
    /// full-driver behaviour is covered by the crate's integration tests.
    fn registry() -> ShardedRegistry {
        ShardedRegistry::new(8)
    }

    #[test]
    fn shard_routing_is_stable_and_total() {
        let r = registry();
        // The same id must land on the same shard every time.
        for id in ["a", "tenant-42", "z"] {
            assert!(std::ptr::eq(r.shard(id), r.shard(id)));
        }
        assert!(r.ids().is_empty());
        assert!(matches!(
            r.get("missing"),
            Err(ServiceError::UnknownTenant(_))
        ));
        assert!(matches!(
            r.remove("missing"),
            Err(ServiceError::UnknownTenant(_))
        ));
    }
}
