//! The sharded tenant registry and its tiered-residency slots.
//!
//! Tenants are hash-routed across N independent shards, each a
//! `parking_lot::RwLock<HashMap<...>>`, so registry traffic scales with
//! tenants instead of funnelling through one global lock. Lookups take a
//! shard read lock only long enough to clone the tenant's slot `Arc` out
//! — no caller ever holds a shard lock across a prediction, execution,
//! or retrain.
//!
//! ## Residency
//!
//! Each registered tenant occupies a [`TenantSlot`] carrying a
//! [`Residency`] state machine:
//!
//! * **Hot** — the full [`TenantState`] (forest snapshot + driver +
//!   resource manager) is resident; the read path clones the `Arc` out.
//! * **Cold** — the heavy state has been dropped after a final snapshot
//!   persist; only [`ColdMeta`] (generation/epoch/watermark/run-id
//!   floors) remains in memory. ~2.7 KiB on disk, ~nothing in RAM.
//! * **Rehydrating** — one caller is loading the newest snapshot back
//!   through `crates/store`; the transition is **single-flight**:
//!   concurrent callers block on the slot's condvar until the one
//!   rehydration completes (or fails back to Cold).
//!
//! The slot keeps the tenant's identity — its id, its `tenant.<id>.*`
//! counter instances, and a defunct flag — across residency transitions,
//! so a cold tenant is indistinguishable from a hot one at every public
//! API except latency (ARCHITECTURE.md invariant #9).

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard};

use parking_lot::{Mutex, RwLock};
use smartpick_core::driver::Smartpick;
use smartpick_core::rm::ResourceManager;
use smartpick_core::wp::WorkloadPredictor;

use crate::error::ServiceError;
use crate::stats::TenantCounters;

/// One tenant's live (hot) state.
///
/// The read path touches only `snapshot` (an `RwLock` held for the
/// nanoseconds an `Arc` clone takes) and the atomic counters; the
/// `driver` mutex is taken exclusively by the retrain worker (and by
/// admin operations like eviction and deregistration).
#[derive(Debug)]
pub(crate) struct TenantState {
    /// The tenant id.
    pub(crate) id: String,
    /// The published immutable prediction snapshot readers run against.
    pub(crate) snapshot: RwLock<Arc<WorkloadPredictor>>,
    /// The training-side driver, owned by the retrain worker.
    pub(crate) driver: Mutex<Smartpick>,
    /// Shared execution substrate, callable without the driver lock.
    pub(crate) rm: Arc<ResourceManager>,
    /// The tenant's configured cost–performance knob ε.
    pub(crate) knob: f64,
    /// Hot-path counters, scraped under `tenant.<id>.*`. Shared with the
    /// registry slot so they survive evict/rehydrate cycles.
    pub(crate) counters: Arc<TenantCounters>,
    /// Snapshots published so far (0 = registration snapshot).
    pub(crate) generation: AtomicU64,
    /// Publication instant, µs since the service epoch.
    pub(crate) published_at_us: AtomicU64,
    /// Whether a `StalenessFlagged` event has been emitted for the
    /// current stale episode (reset on every snapshot republish, so each
    /// episode yields one event, not one per prediction).
    pub(crate) stale_flagged: AtomicBool,
    /// This registration's durability epoch (nanoseconds at registration,
    /// or the recovered snapshot's). Stamped into every snapshot and WAL
    /// record so replay can discard records from an earlier registration
    /// of the same id.
    pub(crate) epoch: u64,
    /// The last run id handed out by `enqueue_report` (ids start at 1;
    /// 0 means "none yet"). Restored to the replay watermark at recovery.
    pub(crate) next_run_id: AtomicU64,
    /// The highest run id a retrain worker has consumed for this tenant —
    /// the watermark stamped into WAL commits and persisted snapshots.
    pub(crate) applied_watermark: AtomicU64,
    /// Reports applied since the last persisted snapshot; drives the
    /// `snapshot_every` persistence cadence.
    pub(crate) applied_since_persist: AtomicU64,
    /// Set by `deregister_tenant` **before** the store directory is
    /// removed. Every persistence site (worker commit/snapshot tail,
    /// evict-time snapshot, registration snapshot) checks it — and
    /// re-checks after writing, compensating with a directory remove —
    /// so a worker mid-batch can never resurrect `tenants/<id>/` for a
    /// tenant the operator deleted.
    pub(crate) defunct: AtomicBool,
    /// Set while the eviction sweep is draining this state. Enqueuers
    /// bump `counters.pending` *then* check this flag; the evictor sets
    /// it *then* checks pending (both `SeqCst`), so one side always sees
    /// the other — a report can never be queued against a state whose
    /// slot just went cold without the enqueuer noticing and retrying
    /// against the rehydrated state.
    pub(crate) retired: AtomicBool,
    /// Last read-path touch, µs since the service epoch — the LRU clock
    /// hand the eviction sweep orders candidates by.
    pub(crate) last_touch_us: AtomicU64,
}

impl TenantState {
    pub(crate) fn new(
        id: String,
        driver: Smartpick,
        now_us: u64,
        counters: Arc<TenantCounters>,
        epoch: u64,
    ) -> Self {
        TenantState {
            snapshot: RwLock::new(driver.snapshot()),
            rm: driver.shared_resource_manager(),
            knob: driver.properties().knob,
            driver: Mutex::new(driver),
            id,
            counters,
            generation: AtomicU64::new(0),
            published_at_us: AtomicU64::new(now_us),
            stale_flagged: AtomicBool::new(false),
            epoch,
            next_run_id: AtomicU64::new(0),
            applied_watermark: AtomicU64::new(0),
            applied_since_persist: AtomicU64::new(0),
            defunct: AtomicBool::new(false),
            retired: AtomicBool::new(false),
            last_touch_us: AtomicU64::new(now_us),
        }
    }

    /// Clones the current snapshot out (the lock is held only for the
    /// `Arc` bump).
    pub(crate) fn read_snapshot(&self) -> Arc<WorkloadPredictor> {
        Arc::clone(&self.snapshot.read())
    }

    /// Publishes a fresh snapshot from the driver's current model.
    pub(crate) fn publish_snapshot(&self, snapshot: Arc<WorkloadPredictor>, now_us: u64) {
        *self.snapshot.write() = snapshot;
        self.generation.fetch_add(1, Ordering::Relaxed);
        self.published_at_us.store(now_us, Ordering::Relaxed);
        // A fresh snapshot ends any stale episode; the next one gets its
        // own event.
        self.stale_flagged.store(false, Ordering::Relaxed);
    }
}

/// What a cold slot remembers about its tenant: the floors a rehydration
/// restores so generation stays monotone and run ids are never reissued
/// within an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ColdMeta {
    /// Published generation at eviction time.
    pub(crate) generation: u64,
    /// The registration's durability epoch.
    pub(crate) epoch: u64,
    /// Highest consumed run id at eviction time.
    pub(crate) watermark: u64,
    /// Highest *issued* run id at eviction time (≥ watermark; quota
    /// rejections burn ids without consuming them).
    pub(crate) next_run_id: u64,
}

/// Where a tenant's heavy state currently lives. See the module docs.
#[derive(Debug)]
pub(crate) enum Residency {
    /// Resident: full state in memory.
    Hot(Arc<TenantState>),
    /// Evicted: only the floors remain; the newest persisted snapshot is
    /// the state of record.
    Cold(ColdMeta),
    /// One caller is loading the snapshot back; everyone else waits.
    Rehydrating,
}

/// What [`TenantSlot::acquire`] resolved to.
pub(crate) enum Acquired {
    /// The tenant is hot; here is its state.
    Hot(Arc<TenantState>),
    /// The tenant was cold and *this caller* now owns the single-flight
    /// rehydration: it must call [`TenantSlot::finish_rehydrate`] or
    /// [`TenantSlot::abort_rehydrate`] (the service wraps this in a
    /// drop guard so a failed load can never strand waiters).
    MustRehydrate(ColdMeta),
}

/// One registered tenant's registry slot: the [`Residency`] state
/// machine plus the identity that survives residency transitions.
///
/// The mutex is `std::sync` (not `parking_lot`) because the
/// single-flight protocol needs a [`Condvar`]; it is held only for state
/// inspection/transition — never across the snapshot load I/O.
#[derive(Debug)]
pub(crate) struct TenantSlot {
    /// The tenant id.
    pub(crate) id: String,
    /// The tenant's `tenant.<id>.*` counter instances — shared with the
    /// hot state and reused across rehydrations, so stats never run
    /// backwards over an evict/rehydrate cycle and teardown can remove
    /// exactly these instances from the scrape.
    pub(crate) counters: Arc<TenantCounters>,
    /// Set when the slot is deregistered; a rehydration completing
    /// against a defunct slot stamps its state defunct too, so late
    /// persistence is suppressed.
    pub(crate) defunct: AtomicBool,
    residency: StdMutex<Residency>,
    rehydrated: Condvar,
}

impl TenantSlot {
    fn new_hot(state: Arc<TenantState>) -> Self {
        TenantSlot {
            id: state.id.clone(),
            counters: Arc::clone(&state.counters),
            defunct: AtomicBool::new(false),
            residency: StdMutex::new(Residency::Hot(state)),
            rehydrated: Condvar::new(),
        }
    }

    /// Locks the residency cell, recovering the data from a poisoned
    /// mutex: every transition writes a whole `Residency` value, so the
    /// cell is valid even if a panicking thread was holding the lock.
    fn cell(&self) -> MutexGuard<'_, Residency> {
        self.residency.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Resolves the slot: returns the hot state, or claims the
    /// single-flight rehydration for this caller, blocking while another
    /// caller's rehydration is in flight.
    pub(crate) fn acquire(&self) -> Acquired {
        let mut cell = self.cell();
        loop {
            match &*cell {
                Residency::Hot(state) => return Acquired::Hot(Arc::clone(state)),
                Residency::Cold(meta) => {
                    let meta = *meta;
                    *cell = Residency::Rehydrating;
                    return Acquired::MustRehydrate(meta);
                }
                Residency::Rehydrating => {
                    cell = self
                        .rehydrated
                        .wait(cell)
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// Completes a claimed rehydration: publishes `state` as hot and
    /// wakes every waiter. Returns whether the slot had been
    /// deregistered meanwhile (in which case `state` is stamped defunct
    /// — waiters still get a servable state, but nothing will persist
    /// for it).
    pub(crate) fn finish_rehydrate(&self, state: Arc<TenantState>) -> bool {
        let defunct = self.defunct.load(Ordering::SeqCst);
        if defunct {
            state.defunct.store(true, Ordering::SeqCst);
        }
        let mut cell = self.cell();
        *cell = Residency::Hot(state);
        drop(cell);
        self.rehydrated.notify_all();
        defunct
    }

    /// Aborts a claimed rehydration (load failure): restores `Cold` so
    /// the next caller gets its own attempt, and wakes waiters.
    pub(crate) fn abort_rehydrate(&self, meta: ColdMeta) {
        let mut cell = self.cell();
        *cell = Residency::Cold(meta);
        drop(cell);
        self.rehydrated.notify_all();
    }

    /// Transitions Hot → Cold, but only if the slot still holds exactly
    /// `expect` (a concurrent deregister + re-register swaps the state
    /// out; going cold then would throw away the *new* tenant).
    pub(crate) fn make_cold(&self, expect: &Arc<TenantState>, meta: ColdMeta) -> bool {
        let mut cell = self.cell();
        match &*cell {
            Residency::Hot(state) if Arc::ptr_eq(state, expect) => {
                *cell = Residency::Cold(meta);
                true
            }
            _ => false,
        }
    }

    /// The hot state, if resident right now (no waiting, no claiming).
    pub(crate) fn peek_hot(&self) -> Option<Arc<TenantState>> {
        match &*self.cell() {
            Residency::Hot(state) => Some(Arc::clone(state)),
            _ => None,
        }
    }

    /// Claims this slot's teardown: the first caller wins and gets
    /// `Some(hot_state)` (the hot state, if any, with its own defunct
    /// stamp set); every later caller gets `None` — the id reads as
    /// unknown while the winner completes the teardown. The stamp
    /// precedes the store-directory removal, which precedes the registry
    /// entry removal: persists are fenced by the stamp, and the id only
    /// becomes re-registrable once its files are gone.
    pub(crate) fn claim_defunct(&self) -> Option<Option<Arc<TenantState>>> {
        if self.defunct.swap(true, Ordering::SeqCst) {
            return None;
        }
        let hot = self.peek_hot();
        if let Some(state) = &hot {
            state.defunct.store(true, Ordering::SeqCst);
        }
        Some(hot)
    }
}

/// The tenant hash every sharded structure routes by — the registry's
/// shards and the retrain workers' queue shards use this same function,
/// so "which worker retrains tenant X" is as stable and uniform as
/// "which registry shard holds tenant X".
pub(crate) fn tenant_hash(id: &str) -> u64 {
    let mut hasher = DefaultHasher::new();
    id.hash(&mut hasher);
    hasher.finish()
}

/// One registry shard: an independently locked slice of the tenant map.
type Shard = RwLock<HashMap<String, Arc<TenantSlot>>>;

/// Hash-routed shards of tenant slots.
#[derive(Debug)]
pub(crate) struct ShardedRegistry {
    shards: Box<[Shard]>,
}

impl ShardedRegistry {
    pub(crate) fn new(shards: usize) -> Self {
        assert!(shards > 0, "at least one shard required");
        ShardedRegistry {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, id: &str) -> &Shard {
        // lint:allow(panic-free-server-paths, reason = "index is modulo shards.len() on the same line")
        &self.shards[(tenant_hash(id) as usize) % self.shards.len()]
    }

    /// Inserts a new tenant as a hot slot; rejects duplicates. Returns
    /// the inserted state so callers can run post-insert steps
    /// (metric install, registration snapshot) against exactly it.
    pub(crate) fn insert(&self, state: TenantState) -> Result<Arc<TenantState>, ServiceError> {
        let state = Arc::new(state);
        match self.shard(&state.id).write().entry(state.id.clone()) {
            Entry::Occupied(_) => Err(ServiceError::TenantExists(state.id.clone())),
            Entry::Vacant(entry) => {
                entry.insert(Arc::new(TenantSlot::new_hot(Arc::clone(&state))));
                Ok(state)
            }
        }
    }

    /// Looks a tenant's slot up, cloning its `Arc` out of the shard.
    pub(crate) fn slot(&self, id: &str) -> Result<Arc<TenantSlot>, ServiceError> {
        self.shard(id)
            .read()
            .get(id)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownTenant(id.to_owned()))
    }

    /// Removes a tenant, returning its slot (whatever its residency).
    pub(crate) fn remove(&self, id: &str) -> Result<Arc<TenantSlot>, ServiceError> {
        self.shard(id)
            .write()
            .remove(id)
            .ok_or_else(|| ServiceError::UnknownTenant(id.to_owned()))
    }

    /// All tenant ids (sorted, for stable output).
    pub(crate) fn ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        ids.sort();
        ids
    }

    /// Every currently-hot tenant, with its slot (the eviction sweep's
    /// candidate list). Shard locks are held only to clone slot `Arc`s
    /// out; each slot is then peeked under its own mutex.
    pub(crate) fn resident(&self) -> Vec<(Arc<TenantSlot>, Arc<TenantState>)> {
        let slots: Vec<Arc<TenantSlot>> = self
            .shards
            .iter()
            .flat_map(|s| s.read().values().cloned().collect::<Vec<_>>())
            .collect();
        slots
            .into_iter()
            .filter_map(|slot| slot.peek_hot().map(|state| (slot, state)))
            .collect()
    }

    /// How many tenants are hot right now.
    pub(crate) fn resident_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .values()
                    .filter(|slot| slot.peek_hot().is_some())
                    .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Registry mechanics are exercised with a `None`-driver stand-in;
    /// full-driver behaviour is covered by the crate's integration tests.
    fn registry() -> ShardedRegistry {
        ShardedRegistry::new(8)
    }

    #[test]
    fn shard_routing_is_stable_and_total() {
        let r = registry();
        // The same id must land on the same shard every time.
        for id in ["a", "tenant-42", "z"] {
            assert!(std::ptr::eq(r.shard(id), r.shard(id)));
        }
        assert!(r.ids().is_empty());
        assert!(matches!(
            r.slot("missing"),
            Err(ServiceError::UnknownTenant(_))
        ));
        assert!(matches!(
            r.remove("missing"),
            Err(ServiceError::UnknownTenant(_))
        ));
        assert_eq!(r.resident_count(), 0);
        assert!(r.resident().is_empty());
    }
}
