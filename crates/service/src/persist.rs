//! Durability wiring: how the service layers over `smartpick_store`.
//!
//! Three pieces live here. [`PersistenceConfig`] is the public knob
//! surface (directory, fsync policy, snapshot cadence, compaction
//! threshold). `ServicePersist`/`WorkerPersist` (crate-private) are the
//! store handles the service façade and each retrain worker hold — the
//! worker's carries the shard's WAL append handle. And `recover` is the
//! crash-recovery pass `SmartpickService::open` runs **before any worker
//! spawns**: newest valid snapshot per tenant, WAL replay past its
//! generation, fresh snapshots persisted, WALs reset.
//!
//! The one rule every piece obeys: the read path
//! (`predict`/`determine`) never touches any of this. Durability costs
//! land on the retrain workers and on startup, never on a prediction.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Instant, SystemTime};

use parking_lot::Mutex;
use smartpick_core::driver::Smartpick;
use smartpick_obs::{event, Counter, EventKind, Gauge, MetricsRegistry, Observability};
use smartpick_store::wal::WalPayload;
use smartpick_store::{FsyncPolicy, Snapshot, Store, StoreError, WalRecord, WalWriter};

use crate::registry::{ShardedRegistry, TenantState};
use crate::stats::TenantCounters;
use crate::worker::CompletedRun;

/// Durability tunables for a [`crate::SmartpickService`] opened over a
/// store directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistenceConfig {
    /// The store root. Snapshots land under `tenants/`, WALs under
    /// `wal/`.
    pub dir: PathBuf,
    /// When WAL appends reach the disk (see
    /// [`smartpick_store::FsyncPolicy`]). Default: one fsync per applied
    /// batch.
    pub fsync: FsyncPolicy,
    /// Persist a tenant's snapshot after this many applied reports. The
    /// WAL covers everything since the last snapshot, so larger values
    /// trade longer replay for fewer snapshot writes.
    pub snapshot_every: u64,
    /// Compact a shard WAL once it grows past this many bytes (checked
    /// after each snapshot persist, when the floors have just moved).
    pub compact_threshold_bytes: u64,
}

impl PersistenceConfig {
    /// A config rooted at `dir` with the default knobs.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        PersistenceConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::PerBatch,
            snapshot_every: 256,
            compact_threshold_bytes: 1 << 20,
        }
    }
}

/// The `store.*` metrics the durability layer reports.
#[derive(Debug)]
pub(crate) struct StoreMetrics {
    pub(crate) wal_bytes_written: Arc<Counter>,
    pub(crate) wal_records_appended: Arc<Counter>,
    pub(crate) wal_records_replayed: Arc<Counter>,
    pub(crate) snapshot_bytes_written: Arc<Counter>,
    pub(crate) snapshots_persisted: Arc<Counter>,
    pub(crate) snapshots_quarantined: Arc<Counter>,
    pub(crate) torn_tails_dropped: Arc<Counter>,
    pub(crate) compactions: Arc<Counter>,
    pub(crate) recovery_duration_us: Arc<Gauge>,
}

impl StoreMetrics {
    pub(crate) fn register(metrics: &MetricsRegistry) -> Self {
        StoreMetrics {
            wal_bytes_written: metrics.counter("store.wal_bytes_written"),
            wal_records_appended: metrics.counter("store.wal_records_appended"),
            wal_records_replayed: metrics.counter("store.wal_records_replayed"),
            snapshot_bytes_written: metrics.counter("store.snapshot_bytes_written"),
            snapshots_persisted: metrics.counter("store.snapshots_persisted"),
            snapshots_quarantined: metrics.counter("store.snapshots_quarantined"),
            torn_tails_dropped: metrics.counter("store.torn_tails_dropped"),
            compactions: metrics.counter("store.compactions"),
            recovery_duration_us: metrics.gauge("store.recovery_duration_us"),
        }
    }
}

/// Per-tenant serialization of snapshot writes against directory
/// removal, shared by the façade, the evictor, and every retrain worker
/// (the [`Store`] itself is only paths; this is the one place their file
/// operations for the same id meet).
///
/// The protocol that makes tenant teardown race-free: deregistration
/// stamps the tenant `defunct` *before* calling [`TenantFiles::remove`],
/// and every snapshot persist re-checks that stamp **inside** the
/// tenant's file lock. So any persist is either ordered before the
/// removal (and its output is deleted with the directory) or observes
/// the stamp and skips — a write can never land *after* the removal and
/// resurrect a deregistered tenant, and a removal can never land after a
/// re-registration's fresh write and delete a live tenant's files.
#[derive(Debug, Default)]
pub(crate) struct TenantFiles {
    locks: Mutex<HashMap<String, Arc<Mutex<()>>>>,
}

impl TenantFiles {
    fn lock_for(&self, id: &str) -> Arc<Mutex<()>> {
        let mut map = self.locks.lock();
        Arc::clone(map.entry(id.to_owned()).or_default())
    }

    /// Drops `id`'s lock entry if no other thread holds a handle on it —
    /// safe because handles are only cloned under the map lock held
    /// here, so `strong_count == 2` (map + ours) proves exclusivity.
    fn release(&self, id: &str, ours: Arc<Mutex<()>>) {
        let mut map = self.locks.lock();
        if map
            .get(id)
            .is_some_and(|l| Arc::strong_count(l) == 2 && Arc::ptr_eq(l, &ours))
        {
            map.remove(id);
        }
    }

    /// Persists `snap` unless `defunct` is set, checked under the
    /// tenant's file lock. `Ok(None)` means the tenant was deregistered
    /// and nothing was written.
    pub(crate) fn persist_unless_defunct(
        &self,
        store: &Store,
        snap: &Snapshot,
        defunct: &AtomicBool,
    ) -> Result<Option<u64>, StoreError> {
        let lock = self.lock_for(&snap.tenant);
        let result = {
            let _guard = lock.lock();
            if defunct.load(Ordering::SeqCst) {
                Ok(None)
            } else {
                store.persist_snapshot(snap).map(Some)
            }
        };
        self.release(&snap.tenant, lock);
        result
    }

    /// Registration's variant: clear whatever files an earlier
    /// registration of this id left, then persist the fresh generation-0
    /// snapshot — one atomic step under the tenant's file lock, skipped
    /// entirely (`Ok(None)`) if this registration was already
    /// deregistered.
    pub(crate) fn fresh_start(
        &self,
        store: &Store,
        snap: &Snapshot,
        defunct: &AtomicBool,
    ) -> Result<Option<u64>, StoreError> {
        let lock = self.lock_for(&snap.tenant);
        let result = {
            let _guard = lock.lock();
            if defunct.load(Ordering::SeqCst) {
                Ok(None)
            } else {
                store
                    .remove_tenant(&snap.tenant)
                    .and_then(|()| store.persist_snapshot(snap).map(Some))
            }
        };
        self.release(&snap.tenant, lock);
        result
    }

    /// Removes `id`'s store directory under its file lock. The caller
    /// must have stamped the tenant defunct *before* calling, so every
    /// concurrent persist either already lost the lock race (its file is
    /// deleted here) or will observe the stamp and skip.
    pub(crate) fn remove(&self, store: &Store, id: &str) -> Result<(), StoreError> {
        let lock = self.lock_for(id);
        let result = {
            let _guard = lock.lock();
            store.remove_tenant(id)
        };
        self.release(id, lock);
        result
    }
}

/// The façade's store handle: registration/deregistration snapshots and
/// the `persist_*` admin API.
#[derive(Debug)]
pub(crate) struct ServicePersist {
    pub(crate) store: Store,
    pub(crate) cfg: PersistenceConfig,
    pub(crate) metrics: Arc<StoreMetrics>,
    pub(crate) files: Arc<TenantFiles>,
}

/// One retrain worker's store handle: the shard WAL plus the knobs the
/// apply loop needs. Rebuilt per spawn attempt (a restarted worker opens
/// a fresh append handle).
#[derive(Debug)]
pub(crate) struct WorkerPersist {
    pub(crate) store: Store,
    /// `None` when the WAL could not be opened — the worker then runs
    /// non-durable (a `StoreDegraded` event was emitted at spawn).
    pub(crate) wal: Mutex<Option<WalWriter>>,
    pub(crate) snapshot_every: u64,
    pub(crate) compact_threshold_bytes: u64,
    pub(crate) fsync: FsyncPolicy,
    pub(crate) metrics: Arc<StoreMetrics>,
    pub(crate) files: Arc<TenantFiles>,
}

/// A fresh durability epoch for a registration: wall-clock nanoseconds,
/// so re-registering an id always gets a larger epoch than any record the
/// old registration wrote.
pub(crate) fn tenant_epoch() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// What [`recover`] did, for the caller's log line.
#[derive(Debug, Default)]
pub(crate) struct RecoveryOutcome {
    pub(crate) tenants: usize,
    pub(crate) unrecoverable: usize,
}

/// Crash recovery: rebuild every on-disk tenant into `registry`.
///
/// Runs strictly before the retrain workers spawn (they open WAL append
/// handles; this pass rewrites the WAL files). Per tenant: load the
/// newest snapshot that validates (corrupt ones were quarantined by the
/// store), restore the driver bit-exactly, then replay this tenant's WAL
/// records from *every* shard file — sorted by run id, deduplicated
/// (at-least-once appends can duplicate), filtered to the snapshot's
/// epoch and past its watermark — through the ordinary `apply_report`.
/// Commits past the snapshot's generation reconstruct the published
/// generation count; trailing applied-but-uncommitted reports count as
/// one more publish. A fresh snapshot is persisted at the recovered
/// generation and the WALs are reset once every tenant is through.
pub(crate) fn recover(
    store: &Store,
    registry: &ShardedRegistry,
    obs: &Observability,
    metrics: &Arc<StoreMetrics>,
    now_us: u64,
) -> RecoveryOutcome {
    let started = Instant::now();
    let mut outcome = RecoveryOutcome::default();

    // Gather every WAL record, tolerating torn tails per shard.
    let mut records: Vec<WalRecord> = Vec::new();
    match store.scan_wals() {
        Ok(scans) => {
            for shard in scans {
                if let Some(reason) = &shard.scan.torn {
                    metrics.torn_tails_dropped.inc();
                    obs.events().publish(
                        event(EventKind::TornTailDropped)
                            .shard(shard.shard)
                            .detail(format!(
                                "kept {} bytes, {} records; dropped tail: {reason}",
                                shard.scan.valid_len,
                                shard.scan.records.len()
                            )),
                    );
                }
                records.extend(shard.scan.records);
            }
        }
        Err(e) => {
            obs.events()
                .publish(event(EventKind::StoreDegraded).detail(format!("WAL scan failed: {e}")));
        }
    }

    let tenant_ids = match store.tenant_ids() {
        Ok(ids) => ids,
        Err(e) => {
            obs.events().publish(
                event(EventKind::StoreDegraded).detail(format!("tenant listing failed: {e}")),
            );
            Vec::new()
        }
    };

    for id in tenant_ids {
        match recover_tenant(store, registry, obs, metrics, now_us, &id, &records) {
            Ok(()) => outcome.tenants += 1,
            Err(why) => {
                outcome.unrecoverable += 1;
                obs.events().publish(
                    event(EventKind::TenantUnrecoverable)
                        .tenant(&id)
                        .detail(why),
                );
            }
        }
    }

    // Everything recoverable is now folded into fresh snapshots; the
    // WALs start over.
    if let Err(e) = store.reset_wals() {
        obs.events()
            .publish(event(EventKind::StoreDegraded).detail(format!("WAL reset failed: {e}")));
    }
    metrics
        .recovery_duration_us
        .set(started.elapsed().as_micros() as i64);
    outcome
}

/// One tenant's recovery. `Err(reason)` means unrecoverable (the caller
/// emits the event); the service still starts.
fn recover_tenant(
    store: &Store,
    registry: &ShardedRegistry,
    obs: &Observability,
    metrics: &Arc<StoreMetrics>,
    now_us: u64,
    id: &str,
    records: &[WalRecord],
) -> Result<(), String> {
    let loaded = store
        .load_snapshot(id)
        .map_err(|e| format!("snapshot load failed: {e}"))?;
    for name in &loaded.quarantined {
        metrics.snapshots_quarantined.inc();
        obs.events().publish(
            event(EventKind::SnapshotQuarantined)
                .tenant(id)
                .detail(format!("{name} failed validation; moved to quarantine/")),
        );
    }
    let snap = loaded
        .snapshot
        .ok_or_else(|| "no snapshot validated at any generation".to_owned())?;
    let mut driver =
        Smartpick::from_state(&snap.state).map_err(|e| format!("snapshot state invalid: {e}"))?;
    obs.events()
        .publish(event(EventKind::SnapshotLoaded).tenant(id).detail(format!(
            "generation {}, watermark {}",
            snap.generation, snap.watermark
        )));

    // This tenant's records, current epoch only, canonical replay order:
    // reports sorted by run id and deduplicated (a worker that panicked
    // mid-batch appends its rescued batch again on restart — at-least-
    // once on disk, exactly-once through the model).
    let replay_start = Instant::now();
    let mut reports: Vec<(u64, &str)> = Vec::new();
    let mut commits: Vec<(u64, u64)> = Vec::new();
    for record in records {
        if record.tenant != id || record.epoch != snap.epoch {
            continue;
        }
        match &record.payload {
            WalPayload::Report { run_id, run_json } => {
                if *run_id > snap.watermark {
                    reports.push((*run_id, run_json));
                }
            }
            WalPayload::Commit {
                generation,
                watermark,
            } => commits.push((*generation, *watermark)),
        }
    }
    reports.sort_by_key(|(run_id, _)| *run_id);
    reports.dedup_by_key(|(run_id, _)| *run_id);

    let mut watermark = snap.watermark;
    let mut replayed = 0u64;
    let mut failed = 0u64;
    for (run_id, run_json) in reports {
        match serde_json::from_str::<CompletedRun>(run_json) {
            Ok(run) => {
                if driver
                    .apply_report(&run.query, &run.determination, &run.report)
                    .is_err()
                {
                    failed += 1;
                }
                replayed += 1;
            }
            Err(_) => failed += 1,
        }
        // The record was consumed either way; the watermark tracks
        // consumption, exactly as the live path's does.
        watermark = watermark.max(run_id);
    }
    metrics.wal_records_replayed.add(replayed);

    // Reconstruct the published generation: commits the replayed
    // watermark actually covers, plus one publish for any trailing
    // applied-but-uncommitted reports.
    let mut generation = snap.generation;
    let mut committed_wm = snap.watermark;
    for (commit_gen, commit_wm) in commits {
        if commit_wm <= watermark && commit_gen > generation {
            generation = commit_gen;
            committed_wm = committed_wm.max(commit_wm);
        }
    }
    if watermark > committed_wm {
        generation += 1;
    }
    obs.events().publish(
        event(EventKind::WalReplayed)
            .tenant(id)
            .duration(replay_start.elapsed())
            .detail(format!(
                "{replayed} reports replayed ({failed} failed), watermark {watermark}, generation {generation}"
            )),
    );

    // Fold the replay into a fresh snapshot before the driver moves into
    // the registry.
    let fresh = Snapshot {
        tenant: id.to_owned(),
        epoch: snap.epoch,
        generation,
        watermark,
        state: driver.export_state(),
    };
    let counters = Arc::new(TenantCounters::detached());
    let state = TenantState::new(
        id.to_owned(),
        driver,
        now_us,
        Arc::clone(&counters),
        snap.epoch,
    );
    state.generation.store(generation, Ordering::Relaxed);
    state.next_run_id.store(watermark, Ordering::Relaxed);
    state.applied_watermark.store(watermark, Ordering::Relaxed);
    let state = registry
        .insert(state)
        .map_err(|e| format!("registry insert failed: {e}"))?;
    counters.install(obs.metrics(), &format!("tenant.{id}"));

    match store.persist_snapshot(&fresh) {
        Ok(bytes) => {
            metrics.snapshots_persisted.inc();
            metrics.snapshot_bytes_written.add(bytes);
            obs.events().publish(
                event(EventKind::SnapshotPersisted)
                    .tenant(id)
                    .detail(format!("generation {generation}, {bytes} bytes (recovery)")),
            );
        }
        Err(e) => {
            // The disk still holds the pre-replay snapshot: mark the
            // in-memory state ahead of it so an eviction later cannot
            // skip its persist believing the disk is current.
            state.applied_since_persist.store(1, Ordering::Relaxed);
            obs.events().publish(
                event(EventKind::StoreDegraded)
                    .tenant(id)
                    .detail(format!("post-recovery snapshot persist failed: {e}")),
            );
        }
    }
    Ok(())
}
