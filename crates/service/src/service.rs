//! The `SmartpickService` façade: many threads, many tenants, one
//! Smartpick per tenant.

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use smartpick_core::driver::{QueryOutcome, Smartpick};
use smartpick_core::wp::{
    ConstraintMode, Determination, PredictionRequest, WorkloadPredictionService,
};
use smartpick_engine::QueryProfile;
use smartpick_obs::{
    event, EventKind, Gauge, HealthReport, LatencyHistogram, Observability, PollFn, RestartPolicy,
    ScrapeEnvelope, SpawnFn, Supervisor, SupervisorConfig, WorkerHealth, WorkerState, WorkerStatus,
};
use smartpick_store::{Snapshot, Store};

use crate::error::ServiceError;
use crate::persist::{
    self, PersistenceConfig, ServicePersist, StoreMetrics, TenantFiles, WorkerPersist,
};
use crate::queue::{PushRejected, ShardedQueue};
use crate::registry::{tenant_hash, ShardedRegistry, TenantState};
use crate::residency::ResidencyCtl;
use crate::stats::{ServiceStats, ShardCounters, TenantCounters, TenantStats, WorkerShardStats};
use crate::worker::{run_worker, CompletedRun, WorkerCtx, WorkerMsg};

/// Tunables for a [`SmartpickService`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Registry shards (tenants are hash-routed across them).
    pub shards: usize,
    /// Total capacity of the update queues (service-wide backpressure),
    /// divided evenly across the worker shards.
    pub queue_capacity: usize,
    /// Max unapplied reports one tenant may have in flight.
    pub tenant_pending_cap: usize,
    /// Max reports a worker applies per batch before republishing
    /// snapshots.
    pub retrain_batch_max: usize,
    /// Background retrain workers. Each owns one tenant-hash-sharded
    /// slice of the update queue, so retrains for distinct tenants
    /// proceed in parallel while each tenant's reports stay ordered.
    pub retrain_workers: usize,
    /// Snapshot-staleness SLO: a prediction served from a snapshot older
    /// than this is *flagged* (never shed) — it counts into
    /// [`TenantStats::stale_predictions`] and trips
    /// [`TenantStats::snapshot_stale`]. `None` disables the check.
    pub max_snapshot_age: Option<Duration>,
    /// What the supervisor does when a retrain worker panics.
    pub restart_policy: RestartPolicy,
    /// How often the supervisor checks for dead workers.
    pub supervisor_poll: Duration,
    /// A worker shard with queued reports and no batch completed within
    /// this deadline is reported *stalled* by
    /// [`SmartpickService::health`] (and makes the service unready).
    pub stall_deadline: Duration,
    /// How many events the in-memory event ring retains (ignored when
    /// the service is built over an existing [`Observability`] via
    /// [`SmartpickService::with_observability`]).
    pub event_capacity: usize,
    /// Durable tenant state, when set: snapshots + per-shard WALs under
    /// the configured directory, with crash recovery at startup. `None`
    /// (the default) runs fully in-memory. Usually set through
    /// [`SmartpickService::open`].
    pub persistence: Option<PersistenceConfig>,
    /// Cap on tenants kept *resident* (hot) at once. When registered
    /// tenants exceed it, a background sweep evicts the least-recently
    /// touched excess: each evicted tenant's state is persisted as a
    /// final snapshot, its forest + driver are dropped, and the first
    /// subsequent touch rehydrates it transparently from the store
    /// (single-flight per tenant). Requires [`ServiceConfig::persistence`].
    /// `None` (the default) keeps every tenant hot.
    pub max_resident_tenants: Option<usize>,
    /// Evict a tenant untouched by the read path for this long, on the
    /// same terms as `max_resident_tenants` (requires persistence).
    /// `None` (the default) disables idle eviction.
    pub idle_evict_after: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 16,
            queue_capacity: 1024,
            tenant_pending_cap: 64,
            retrain_batch_max: 32,
            retrain_workers: 2,
            max_snapshot_age: None,
            restart_policy: RestartPolicy::Restart {
                max_retries: 3,
                backoff: Duration::from_millis(50),
            },
            supervisor_poll: Duration::from_millis(20),
            stall_deadline: Duration::from_secs(5),
            event_capacity: 256,
            persistence: None,
            max_resident_tenants: None,
            idle_evict_after: None,
        }
    }
}

/// What [`SmartpickService::try_flush`] observed — the typed answer to
/// "did my reports land, and if not, why not".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushOutcome {
    /// Every report enqueued before the call was applied and its
    /// tenant's snapshot republished, on every shard.
    Flushed,
    /// A worker shard failed permanently (restart policy exhausted); its
    /// queue will never drain. Retrying cannot help.
    ShardFailed {
        /// The failed shard.
        shard: usize,
    },
    /// The timeout elapsed while a live shard was still draining.
    /// Retrying with a longer timeout may succeed.
    TimedOut {
        /// The shard still draining when time ran out.
        shard: usize,
    },
    /// The service was shut down before the flush could be enqueued.
    Stopped,
}

impl FlushOutcome {
    /// `true` only for [`FlushOutcome::Flushed`].
    pub fn is_flushed(self) -> bool {
        matches!(self, FlushOutcome::Flushed)
    }
}

/// A thread-safe, multi-tenant prediction service over
/// [`smartpick_core::Smartpick`] — "smartpickd".
///
/// Concurrency model, in one paragraph: tenants live in a **sharded
/// registry** (hash-routed `RwLock<HashMap>` shards, held only for an
/// `Arc` clone); `predict`/`determine` run against each tenant's
/// **immutable model snapshot** (`Arc<WorkloadPredictor>`), so reads
/// never block behind a writer; completed runs are fed through **bounded,
/// tenant-hash-sharded update queues** to N background **retrain
/// workers** (one per shard) that batch them per tenant, apply them to
/// the owning driver under its per-tenant mutex, and republish the
/// snapshot — the paper's §4.2 monitor thread, sharded the same way as
/// the registry so distinct tenants retrain in parallel while each
/// tenant's reports stay FIFO. **Admission control** (queue capacity +
/// per-tenant pending quotas) sheds training feedback under overload
/// instead of ever failing or delaying the read path.
///
/// Observability: every hot-path counter lives in a shared
/// [`Observability`] bundle (metrics registry + event log) under
/// `service.*` / `tenant.<id>.*` names; [`SmartpickService::scrape`]
/// returns the whole thing as one envelope and
/// [`SmartpickService::health`] answers liveness/readiness. Retrain
/// workers run under a [`Supervisor`] applying the configured
/// [`RestartPolicy`] when one panics — with the panicked worker's
/// unapplied batch re-queued first, so no accepted report is lost.
///
/// # Example
///
/// ```no_run
/// use smartpick_cloudsim::{CloudEnv, Provider};
/// use smartpick_core::driver::Smartpick;
/// use smartpick_core::properties::SmartpickProperties;
/// use smartpick_service::SmartpickService;
/// use smartpick_workloads::tpcds;
///
/// let training: Vec<_> = tpcds::TRAINING_QUERIES
///     .iter()
///     .map(|&q| tpcds::query(q, 100.0).expect("catalog query"))
///     .collect();
/// let driver = Smartpick::train(
///     CloudEnv::new(Provider::Aws),
///     SmartpickProperties::default(),
///     &training,
///     42,
/// )?;
/// let service = SmartpickService::with_defaults();
/// service.register_tenant("acme", driver)?;
/// let outcome = service.submit("acme", &tpcds::query(11, 100.0).expect("q"), 7)?;
/// println!("{} in {:.1}s", outcome.determination.allocation, outcome.report.seconds());
/// # Ok::<(), smartpick_service::ServiceError>(())
/// ```
#[derive(Debug)]
pub struct SmartpickService {
    registry: Arc<ShardedRegistry>,
    /// Residency policy + rehydration path; shared with the supervisor's
    /// poll hook, which runs the eviction sweep.
    residency: Arc<ResidencyCtl>,
    queues: ShardedQueue<WorkerMsg>,
    supervisor: Supervisor,
    shard_counters: Box<[Arc<ShardCounters>]>,
    config: ServiceConfig,
    epoch: Instant,
    obs: Arc<Observability>,
    /// Service-wide totals, incremented on the hot path alongside the
    /// per-tenant counters so [`SmartpickService::stats`] never walks the
    /// registry.
    totals: Arc<TenantCounters>,
    predict_latency: Arc<LatencyHistogram>,
    tenants_gauge: Arc<Gauge>,
    queue_depth_gauge: Arc<Gauge>,
    shard_depth_gauges: Box<[Arc<Gauge>]>,
    /// The durable store, when configured: registration/deregistration
    /// snapshots and the `persist_*` admin API. The worker-side WAL
    /// handles live in each worker's context, not here.
    persist: Option<Arc<ServicePersist>>,
}

impl SmartpickService {
    /// Starts a service (and its retrain worker threads) with `config`.
    ///
    /// # Panics
    ///
    /// Panics if any `config` count/capacity field is zero.
    pub fn new(config: ServiceConfig) -> Self {
        let obs = Arc::new(Observability::new(config.event_capacity));
        SmartpickService::with_observability(config, obs)
    }

    /// Starts a service over an existing [`Observability`] bundle, so
    /// other layers of the process (e.g. the wire server) feed the same
    /// scrape. See [`SmartpickService::new`].
    ///
    /// # Panics
    ///
    /// Panics if any `config` count/capacity field is zero.
    pub fn with_observability(config: ServiceConfig, obs: Arc<Observability>) -> Self {
        assert!(config.shards > 0, "shards must be positive");
        assert!(config.queue_capacity > 0, "queue_capacity must be positive");
        assert!(
            config.tenant_pending_cap > 0,
            "tenant_pending_cap must be positive"
        );
        assert!(
            config.retrain_batch_max > 0,
            "retrain_batch_max must be positive"
        );
        assert!(
            config.retrain_workers > 0,
            "retrain_workers must be positive"
        );
        assert!(
            config.max_resident_tenants != Some(0),
            "max_resident_tenants must be positive when set"
        );
        assert!(
            (config.max_resident_tenants.is_none() && config.idle_evict_after.is_none())
                || config.persistence.is_some(),
            "residency limits require persistence (evicted tenants rehydrate from the store)"
        );
        let queues = ShardedQueue::new(config.retrain_workers, config.queue_capacity);
        let metrics = obs.metrics();
        let shard_counters: Box<[Arc<ShardCounters>]> = (0..config.retrain_workers)
            .map(|i| Arc::new(ShardCounters::register(metrics, i)))
            .collect();
        let shard_depth_gauges: Box<[Arc<Gauge>]> = (0..config.retrain_workers)
            .map(|i| metrics.gauge(&format!("service.worker.{i}.queue_depth")))
            .collect();
        let totals = Arc::new(TenantCounters::register(metrics, "service"));
        let predict_latency = metrics.histogram("service.predict_latency");
        let tenants_gauge = metrics.gauge("service.tenants");
        let queue_depth_gauge = metrics.gauge("service.queue_depth");
        let epoch = Instant::now();
        let registry = Arc::new(ShardedRegistry::new(config.shards));

        // Durable store + crash recovery, strictly before any worker
        // spawns: recovery rewrites the WAL files the workers are about
        // to hold append handles on. A store that cannot open degrades
        // (event + in-memory operation) — startup never fails for the
        // disk.
        let persist: Option<Arc<ServicePersist>> =
            config
                .persistence
                .as_ref()
                .and_then(|cfg| match Store::open(&cfg.dir) {
                    Ok(store) => {
                        let store_metrics = Arc::new(StoreMetrics::register(metrics));
                        let outcome = persist::recover(
                            &store,
                            &registry,
                            &obs,
                            &store_metrics,
                            epoch.elapsed().as_micros() as u64,
                        );
                        tenants_gauge.add(outcome.tenants as i64);
                        Some(Arc::new(ServicePersist {
                            store,
                            cfg: cfg.clone(),
                            metrics: store_metrics,
                            files: Arc::new(TenantFiles::default()),
                        }))
                    }
                    Err(e) => {
                        obs.events().publish(
                            event(EventKind::StoreDegraded)
                                .detail(format!("store open failed, running in-memory only: {e}")),
                        );
                        None
                    }
                });

        // The residency controller is built after recovery so its
        // resident gauge starts at the recovered tenant count; its sweep
        // rides the supervisor's poll loop (throttled internally).
        let residency = Arc::new(ResidencyCtl::new(
            Arc::clone(&registry),
            persist.clone(),
            Arc::clone(&obs),
            config.max_resident_tenants,
            config.idle_evict_after.map(|d| d.as_micros() as u64),
            epoch,
        ));
        let poll_hook: Option<PollFn> = if residency.sweeps_enabled() {
            let ctl = Arc::clone(&residency);
            Some(Box::new(move || ctl.sweep()))
        } else {
            None
        };

        // Workers are spawned (and respawned after panics) through the
        // supervisor; a spawn failure marks its shard failed — visible in
        // health() — instead of panicking the caller.
        let spawn: SpawnFn = {
            let shard_queues: Vec<_> = (0..config.retrain_workers)
                .map(|i| queues.shard(i))
                .collect();
            let shard_counters = shard_counters.clone();
            let totals = Arc::clone(&totals);
            let obs = Arc::clone(&obs);
            let batch_max = config.retrain_batch_max;
            let persist = persist.clone();
            Box::new(move |shard, attempt| {
                let queue = Arc::clone(shard_queues.get(shard)?);
                let worker_persist = persist.as_ref().map(|sp| {
                    // Each spawn attempt opens its own append handle (the
                    // predecessor's died with its thread); open failure
                    // degrades this worker to non-durable applies.
                    let wal = match sp.store.open_wal(shard, sp.cfg.fsync) {
                        Ok(writer) => Some(writer),
                        Err(e) => {
                            obs.events().publish(
                                event(EventKind::StoreDegraded)
                                    .shard(shard)
                                    .detail(format!("WAL open failed, applying non-durably: {e}")),
                            );
                            None
                        }
                    };
                    Arc::new(WorkerPersist {
                        store: sp.store.clone(),
                        wal: Mutex::new(wal),
                        snapshot_every: sp.cfg.snapshot_every,
                        compact_threshold_bytes: sp.cfg.compact_threshold_bytes,
                        fsync: sp.cfg.fsync,
                        metrics: Arc::clone(&sp.metrics),
                        files: Arc::clone(&sp.files),
                    })
                });
                let ctx = WorkerCtx {
                    shard,
                    counters: Arc::clone(shard_counters.get(shard)?),
                    totals: Arc::clone(&totals),
                    obs: Arc::clone(&obs),
                    epoch,
                    persist: worker_persist,
                };
                std::thread::Builder::new()
                    .name(format!("smartpickd-retrain-{shard}.{attempt}"))
                    .spawn(move || run_worker(queue, batch_max, ctx))
                    .ok()
            })
        };
        let supervisor = Supervisor::start_with_poll_hook(
            config.retrain_workers,
            SupervisorConfig {
                policy: config.restart_policy,
                poll: config.supervisor_poll,
            },
            spawn,
            poll_hook,
            Arc::clone(&obs),
            "service.worker",
        );

        SmartpickService {
            registry,
            residency,
            queues,
            supervisor,
            shard_counters,
            config,
            epoch,
            obs,
            totals,
            predict_latency,
            tenants_gauge,
            queue_depth_gauge,
            shard_depth_gauges,
            persist,
        }
    }

    /// Starts a service with [`ServiceConfig::default`].
    pub fn with_defaults() -> Self {
        SmartpickService::new(ServiceConfig::default())
    }

    /// Opens a **durable** service rooted at `dir`: recovers every tenant
    /// persisted there (newest valid snapshot + WAL replay, tolerating
    /// torn tails and quarantining corrupt files), then starts the
    /// workers with per-shard WALs and periodic snapshot persistence.
    ///
    /// `config.persistence` supplies the durability knobs if set (its
    /// `dir` is overridden by `dir`); otherwise the defaults of
    /// [`PersistenceConfig::at`] apply.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Store`] if the store directory cannot be created
    /// or opened. Per-tenant recovery problems never fail startup; they
    /// surface as `snapshot_quarantined` / `tenant_unrecoverable` /
    /// `store_degraded` events and `store.*` metrics.
    ///
    /// # Panics
    ///
    /// Panics if any `config` count/capacity field is zero (as
    /// [`SmartpickService::new`]).
    pub fn open(
        dir: impl Into<PathBuf>,
        mut config: ServiceConfig,
    ) -> Result<SmartpickService, ServiceError> {
        let dir = dir.into();
        // Validate the root up front so a bad path is a hard error here,
        // not a degraded-mode surprise later.
        Store::open(&dir).map_err(|e| ServiceError::Store(e.to_string()))?;
        match &mut config.persistence {
            Some(cfg) => cfg.dir = dir,
            None => config.persistence = Some(PersistenceConfig::at(dir)),
        }
        Ok(SmartpickService::new(config))
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The shared observability bundle (metrics registry + event log)
    /// this service reports into.
    pub fn observability(&self) -> &Arc<Observability> {
        &self.obs
    }

    // ---------------------------------------------------------------
    // Tenant management
    // ---------------------------------------------------------------

    /// Registers a tenant owning a trained `driver`. Its first snapshot
    /// is published immediately.
    ///
    /// # Errors
    ///
    /// [`ServiceError::TenantExists`] on a duplicate id,
    /// [`ServiceError::Stopped`] after shutdown.
    pub fn register_tenant(
        &self,
        id: impl Into<String>,
        driver: Smartpick,
    ) -> Result<(), ServiceError> {
        if self.queues.is_closed() {
            return Err(ServiceError::Stopped);
        }
        let id = id.into();
        let epoch = persist::tenant_epoch();
        // Export before the driver moves into the registry; persisted
        // only after the insert succeeds, so a duplicate-id rejection
        // cannot touch the existing tenant's files.
        let exported = self.persist.as_ref().map(|_| driver.export_state());
        // Counters are built detached and only *installed* into the
        // scrape after the insert succeeds — a rejected duplicate never
        // touches the incumbent's metrics, and deregistration later
        // removes exactly these instances (identity-keyed), never a
        // re-registration's fresh ones.
        let counters = Arc::new(TenantCounters::detached());
        let state = self.registry.insert(TenantState::new(
            id.clone(),
            driver,
            self.now_us(),
            Arc::clone(&counters),
            epoch,
        ))?;
        counters.install(self.obs.metrics(), &format!("tenant.{id}"));
        self.tenants_gauge.inc();
        self.residency.note_registered();
        self.obs
            .events()
            .publish(event(EventKind::TenantRegistered).tenant(&id));
        if let (Some(sp), Some(exported)) = (&self.persist, exported) {
            let snap = Snapshot {
                tenant: id.clone(),
                epoch,
                generation: 0,
                watermark: 0,
                state: exported,
            };
            // Clear any files an earlier registration of this id left
            // (they must never shadow the new epoch) and write the fresh
            // generation-0 snapshot — one step under the tenant's file
            // lock, with the defunct stamp checked inside it: a
            // deregistration landing after the insert above either runs
            // its removal after this write (deleting it) or has already
            // stamped the state, in which case nothing is written.
            match sp.files.fresh_start(&sp.store, &snap, &state.defunct) {
                Ok(Some(bytes)) => {
                    sp.metrics.snapshots_persisted.inc();
                    sp.metrics.snapshot_bytes_written.add(bytes);
                    self.obs.events().publish(
                        event(EventKind::SnapshotPersisted)
                            .tenant(&id)
                            .detail(format!("generation 0, {bytes} bytes (registration)")),
                    );
                }
                Ok(None) => {} // Already deregistered; its teardown owns the files.
                Err(e) => {
                    // The base state never reached the disk: mark the
                    // in-memory state ahead of it so an eviction cannot
                    // skip its persist believing the disk is current.
                    state.applied_since_persist.store(1, Ordering::Relaxed);
                    self.obs.events().publish(
                        event(EventKind::StoreDegraded)
                            .tenant(&id)
                            .detail(format!("registration snapshot persist failed: {e}")),
                    );
                }
            }
        }
        Ok(())
    }

    /// Registers a tenant forked from `template` (shares the trained
    /// model copy-on-write; owns fresh history/billing/monitor state).
    /// The cheap way to stamp out many tenants from one kick-start
    /// training run.
    ///
    /// # Errors
    ///
    /// See [`SmartpickService::register_tenant`].
    pub fn register_fork(
        &self,
        id: impl Into<String>,
        template: &Smartpick,
        seed: u64,
    ) -> Result<(), ServiceError> {
        self.register_tenant(id, template.fork(seed))
    }

    /// Removes a tenant. In-flight reports already accepted for it are
    /// still applied (the worker holds its own handle) and still count
    /// into the service-wide totals — those are incremented live on the
    /// hot path, so aggregates never run backwards across tenant churn.
    /// The tenant's `tenant.<id>.*` metrics are unregistered from the
    /// scrape.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownTenant`] if not registered.
    pub fn deregister_tenant(&self, id: &str) -> Result<(), ServiceError> {
        let slot = self.registry.slot(id)?;
        // Claim the teardown: exactly one deregistration wins; a
        // concurrent second call reads the id as already unknown. The
        // claim stamps the tenant defunct *before* the store directory
        // goes — a retrain worker still holding this state mid-batch (or
        // an evict-time persist) checks the stamp inside the tenant's
        // file lock, so nothing can recreate `tenants/<id>/` after the
        // removal below. That is the ghost-tenant resurrection race this
        // ordering exists to close.
        let Some(was_hot) = slot.claim_defunct() else {
            return Err(ServiceError::UnknownTenant(id.to_owned()));
        };
        // Identity-keyed: removes exactly this registration's counter
        // instances, so a concurrent `register_tenant` of the same id
        // can never have its fresh metrics pruned by this teardown.
        slot.counters
            .uninstall(self.obs.metrics(), &format!("tenant.{id}"));
        self.tenants_gauge.dec();
        if was_hot.is_some() {
            self.residency.note_dropped_hot();
        }
        if let Some(sp) = &self.persist {
            // Best-effort: leftover WAL records for the removed tenant
            // are dropped at the next compaction/recovery (no tenant
            // directory to replay into).
            if let Err(e) = sp.files.remove(&sp.store, id) {
                self.obs.events().publish(
                    event(EventKind::StoreDegraded)
                        .tenant(id)
                        .detail(format!("tenant removal from store failed: {e}")),
                );
            }
        }
        // The registry entry goes last: the id only becomes
        // re-registrable once its files are gone, so a racing
        // re-registration's fresh snapshot can never be deleted by this
        // teardown — it sees `TenantExists` until the teardown is done.
        let _ = self.registry.remove(id);
        self.obs
            .events()
            .publish(event(EventKind::TenantDeregistered).tenant(id));
        Ok(())
    }

    /// Registered tenant ids, sorted.
    pub fn tenants(&self) -> Vec<String> {
        self.registry.ids()
    }

    // ---------------------------------------------------------------
    // Read path (snapshot predictions)
    // ---------------------------------------------------------------

    /// Resolves a tenant to a servable state, transparently rehydrating
    /// it from its newest snapshot if it was evicted (single-flight;
    /// concurrent callers block on the one in-flight load). This is the
    /// only residency cost the read path ever pays — a hot tenant
    /// resolves exactly as the registry lookup always did.
    fn resolve(&self, tenant: &str) -> Result<Arc<TenantState>, ServiceError> {
        self.residency.resolve(tenant)
    }

    /// Runs a full resource determination for `tenant` against its
    /// current model snapshot. Never blocks behind retraining: the
    /// snapshot is an immutable `Arc`d model, and the only locks touched
    /// (shard + snapshot cell) are held for the duration of an `Arc`
    /// clone.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownTenant`], or a core prediction failure.
    pub fn predict(
        &self,
        tenant: &str,
        request: &PredictionRequest,
    ) -> Result<Determination, ServiceError> {
        let state = self.resolve(tenant)?;
        self.predict_on(&state, request)
    }

    /// The snapshot read against an already-resolved tenant.
    fn predict_on(
        &self,
        state: &TenantState,
        request: &PredictionRequest,
    ) -> Result<Determination, ServiceError> {
        let start = Instant::now();
        let snapshot = state.read_snapshot();
        let stale = self.snapshot_is_stale(state);
        let determination = snapshot.determine(request)?;
        // Staleness SLO: flag (never delay or shed) predictions served
        // from a snapshot past the configured age bound. Counted only
        // for predictions actually served, so the counter can never
        // exceed `predictions`.
        if stale {
            self.note_stale_serve(state, 1);
        }
        state.counters.predictions.inc();
        self.totals.predictions.inc();
        self.predict_latency.record(start.elapsed());
        Ok(determination)
    }

    /// Counts `n` stale serves and emits one `StalenessFlagged` event per
    /// stale episode (not per prediction — the ring is for incidents, not
    /// samples).
    fn note_stale_serve(&self, state: &TenantState, n: u64) {
        state.counters.stale_predictions.add(n);
        self.totals.stale_predictions.add(n);
        if !state.stale_flagged.swap(true, Ordering::Relaxed) {
            self.obs.events().publish(
                event(EventKind::StalenessFlagged)
                    .tenant(&state.id)
                    .detail("snapshot older than max_snapshot_age; serving continues"),
            );
        }
    }

    /// Whether `state`'s current snapshot is older than the configured
    /// [`ServiceConfig::max_snapshot_age`] (always `false` when unset).
    fn snapshot_is_stale(&self, state: &TenantState) -> bool {
        let Some(max_age) = self.config.max_snapshot_age else {
            return false;
        };
        let published = state.published_at_us.load(Ordering::Relaxed);
        let age_us = self.now_us().saturating_sub(published);
        age_us > max_age.as_micros() as u64
    }

    /// Answers every request in one batched snapshot read: the tenant is
    /// resolved once, **one** snapshot `Arc` is cloned out, and the
    /// whole batch is priced by a single tree-outer forest pass
    /// (`WorkloadPredictor::determine_batch`), so N queries cost one
    /// registry hop + one snapshot acquisition instead of N of each.
    /// Results are identical to N sequential [`SmartpickService::predict`]
    /// calls with the same requests against an unchanged snapshot, and
    /// the tenant's prediction counter advances by N.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownTenant`], or a core prediction failure —
    /// the batch fails whole, before any partial results.
    pub fn determine_batch(
        &self,
        tenant: &str,
        requests: &[PredictionRequest],
    ) -> Result<Vec<Determination>, ServiceError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let state = self.resolve(tenant)?;
        let start = Instant::now();
        let snapshot = state.read_snapshot();
        let stale = self.snapshot_is_stale(&state);
        let determinations = snapshot.determine_batch(requests)?;
        let n = requests.len() as u64;
        if stale {
            self.note_stale_serve(&state, n);
        }
        state.counters.predictions.add(n);
        self.totals.predictions.add(n);
        // One latency sample for the whole batch: the histogram tracks
        // serving operations, and the batch is served as one.
        self.predict_latency.record(start.elapsed());
        Ok(determinations)
    }

    /// Convenience [`SmartpickService::predict`]: hybrid search with the
    /// tenant's configured knob.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use std::sync::Arc;
    /// use smartpick_cloudsim::{CloudEnv, Provider};
    /// use smartpick_core::driver::Smartpick;
    /// use smartpick_core::properties::SmartpickProperties;
    /// use smartpick_service::SmartpickService;
    /// use smartpick_workloads::tpcds;
    ///
    /// let training: Vec<_> = tpcds::TRAINING_QUERIES
    ///     .iter()
    ///     .map(|&q| tpcds::query(q, 100.0).expect("catalog query"))
    ///     .collect();
    /// let template = Smartpick::train(
    ///     CloudEnv::new(Provider::Aws),
    ///     SmartpickProperties::default(),
    ///     &training,
    ///     42,
    /// )?;
    /// let service = Arc::new(SmartpickService::with_defaults());
    /// service.register_fork("acme", &template, 7)?;
    /// let det = service.determine("acme", &training[0], 99)?;
    /// println!("{} in {:.1}s", det.allocation, det.predicted_seconds);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// See [`SmartpickService::predict`].
    pub fn determine(
        &self,
        tenant: &str,
        query: &QueryProfile,
        seed: u64,
    ) -> Result<Determination, ServiceError> {
        let state = self.resolve(tenant)?;
        self.predict_on(
            &state,
            &PredictionRequest {
                query: query.clone(),
                knob: state.knob,
                constraint: ConstraintMode::Hybrid,
                seed,
            },
        )
    }

    /// The full online path: determine against the tenant's snapshot,
    /// execute on its shared Resource Manager, and feed the completed run
    /// back through the update queue.
    ///
    /// Retraining is asynchronous here, so the returned outcome always
    /// has `retrain: None`; retrains show up in
    /// [`SmartpickService::tenant_stats`] once the worker applies the
    /// report. Under backpressure the *feedback* is shed (visible as a
    /// rejection in the stats) — the query result itself is never
    /// delayed or dropped.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownTenant`], or a core prediction/execution
    /// failure.
    pub fn submit(
        &self,
        tenant: &str,
        query: &QueryProfile,
        seed: u64,
    ) -> Result<QueryOutcome, ServiceError> {
        // Resolve once and thread the state through: re-resolving per step
        // would let a concurrent deregister/re-register swap the tenant
        // out from under us mid-submission (feedback applied to the wrong
        // tenant instance) and would cost extra shard hops on the hot
        // path.
        let state = self.resolve(tenant)?;
        let determination = self.predict_on(
            &state,
            &PredictionRequest {
                query: query.clone(),
                knob: state.knob,
                constraint: ConstraintMode::Hybrid,
                seed,
            },
        )?;
        let report = state
            .rm
            .execute(query, &determination.allocation, seed ^ EXEC_SEED_MIX)
            .map_err(smartpick_core::SmartpickError::from)?;
        state.counters.executions.inc();
        self.totals.executions.inc();
        // Feedback is best-effort under load: a shed report costs model
        // freshness, not correctness. (The retry only covers the
        // eviction race; admission-control rejections still shed.)
        let _ = self.enqueue_with_retry(
            Arc::clone(&state),
            CompletedRun {
                query: query.clone(),
                determination: determination.clone(),
                report: report.clone(),
            },
        );
        Ok(QueryOutcome {
            determination,
            report,
            retrain: None,
        })
    }

    // ---------------------------------------------------------------
    // Write path (update queue → retrain worker)
    // ---------------------------------------------------------------

    /// Feeds one completed run into the batched update queue for the
    /// retrain worker to apply.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownTenant`]; [`ServiceError::QuotaExceeded`]
    /// when the tenant is over its pending cap;
    /// [`ServiceError::QueueFull`] under service-wide backpressure;
    /// [`ServiceError::Stopped`] after shutdown.
    pub fn report_run(&self, tenant: &str, run: CompletedRun) -> Result<(), ServiceError> {
        let state = self.resolve(tenant)?;
        self.enqueue_with_retry(state, run)
    }

    /// [`SmartpickService::enqueue_report`] with the residency retry: a
    /// report that lost the race against the eviction sweep backs out
    /// and re-resolves (rehydrating the tenant), so accepted feedback is
    /// never dropped on the floor by capacity management. The loop is
    /// bounded in practice — a fresh resolve stamps the touch clock, so
    /// the sweep will not immediately re-evict the tenant it just lost
    /// a report race on.
    fn enqueue_with_retry(
        &self,
        mut state: Arc<TenantState>,
        mut run: CompletedRun,
    ) -> Result<(), ServiceError> {
        loop {
            match self.enqueue_report(&state, run) {
                Enqueue::Done(result) => return result,
                Enqueue::Retired(returned) => {
                    run = *returned;
                    std::thread::yield_now();
                    let id = state.id.clone();
                    state = self.resolve(&id)?;
                }
            }
        }
    }

    /// Quota check + enqueue against an already-resolved tenant.
    fn enqueue_report(&self, state: &Arc<TenantState>, run: CompletedRun) -> Enqueue {
        // Reserve quota (compensating add so concurrent reservations
        // cannot sneak past the cap). `SeqCst` pairs with the eviction
        // sweep's Dekker handshake: we bump `pending` *then* read
        // `retired`; the evictor stores `retired` *then* reads `pending`
        // — one side always observes the other, so a report can never
        // land on a state that silently went cold.
        let cap = self.config.tenant_pending_cap;
        let prior = state.counters.pending.fetch_add(1, Ordering::SeqCst);
        if state.retired.load(Ordering::SeqCst) {
            state.counters.pending.fetch_sub(1, Ordering::SeqCst);
            return Enqueue::Retired(Box::new(run));
        }
        if prior >= cap {
            state.counters.pending.fetch_sub(1, Ordering::Relaxed);
            self.note_shed(state, "tenant pending quota exceeded");
            return Enqueue::Done(Err(ServiceError::QuotaExceeded {
                tenant: state.id.clone(),
                pending: prior,
                cap,
            }));
        }

        // Run ids are assigned at admission (ids start at 1), so a report
        // keeps its id across a worker-panic re-queue and its WAL records
        // deduplicate at replay.
        let run_id = state.next_run_id.fetch_add(1, Ordering::Relaxed) + 1;
        let msg = WorkerMsg::Job {
            tenant: Arc::clone(state),
            run_id,
            run: Box::new(run),
        };
        let shard = self.worker_shard_of(&state.id);
        match self.queues.try_push(shard, msg) {
            Ok(()) => {
                state.counters.reports_enqueued.inc();
                self.totals.reports_enqueued.inc();
                Enqueue::Done(Ok(()))
            }
            Err(rejected) => {
                state.counters.pending.fetch_sub(1, Ordering::Relaxed);
                Enqueue::Done(Err(match rejected {
                    PushRejected::Full => {
                        self.note_shed(state, "update queue full");
                        ServiceError::QueueFull {
                            capacity: self.queues.shard_capacity(),
                        }
                    }
                    PushRejected::Closed => {
                        self.note_shed(state, "service stopped");
                        ServiceError::Stopped
                    }
                }))
            }
        }
    }

    /// Counts one shed report and puts it on the event record.
    fn note_shed(&self, state: &TenantState, why: &str) {
        state.counters.rejections.inc();
        self.totals.rejections.inc();
        self.obs
            .events()
            .publish(event(EventKind::FeedbackShed).tenant(&state.id).detail(why));
    }

    /// The retrain-worker shard `tenant` routes to (same hash as the
    /// registry's shard routing).
    fn worker_shard_of(&self, tenant: &str) -> usize {
        self.queues.shard_of(tenant_hash(tenant))
    }

    /// Blocks until every report enqueued before this call has been
    /// applied and its tenant's snapshot republished — on every worker
    /// shard. Returns `false` if the service is already shut down or a
    /// worker shard has failed permanently (its queue would never drain).
    /// [`SmartpickService::try_flush`] reports *which* of those happened.
    pub fn flush(&self) -> bool {
        self.flush_inner(None).is_flushed()
    }

    /// [`SmartpickService::flush`] with a deadline and a typed outcome:
    /// callers can tell a shard that failed permanently (retrying is
    /// pointless) from one that was merely still draining when `timeout`
    /// ran out (retrying with a longer timeout may succeed).
    pub fn try_flush(&self, timeout: Duration) -> FlushOutcome {
        self.flush_inner(Some(Instant::now() + timeout))
    }

    fn flush_inner(&self, deadline: Option<Instant>) -> FlushOutcome {
        if let Some(shard) = self.failed_shards().next() {
            return FlushOutcome::ShardFailed { shard };
        }
        // One flush token per shard; the blocking pushes park on each
        // queue's not-full condvar, so a flush against a saturated queue
        // sleeps instead of spinning against the very workers it is
        // waiting on.
        let mut pending = Vec::with_capacity(self.queues.shard_count());
        for shard in 0..self.queues.shard_count() {
            let (ack, done) = sync_channel(1);
            if self
                .queues
                .push_blocking(shard, WorkerMsg::Flush(ack))
                .is_err()
            {
                return FlushOutcome::Stopped;
            }
            pending.push(done);
        }
        // A worker can die *while* we wait (its restart re-queues and
        // eventually acks our token), or die for good (policy gives up) —
        // poll with a timeout so a permanently failed shard turns into a
        // typed outcome instead of a hang.
        for (shard, done) in pending.into_iter().enumerate() {
            loop {
                match done.recv_timeout(Duration::from_millis(50)) {
                    Ok(()) => break,
                    Err(RecvTimeoutError::Timeout) => {
                        if self.shard_has_failed(shard) {
                            return FlushOutcome::ShardFailed { shard };
                        }
                        if deadline.is_some_and(|d| Instant::now() >= d) {
                            return FlushOutcome::TimedOut { shard };
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        // The ack sender died without sending; the rescue
                        // guard re-queues flush tokens on panic, so this
                        // means the shard is gone for good.
                        return FlushOutcome::ShardFailed { shard };
                    }
                }
            }
        }
        FlushOutcome::Flushed
    }

    // ---------------------------------------------------------------
    // Durability (admin API)
    // ---------------------------------------------------------------

    /// Persists `tenant`'s full driver state to the store right now, off
    /// the worker cadence — the admin "checkpoint this tenant" hook.
    /// Returns the snapshot's encoded size in bytes. An **evicted** (or
    /// currently rehydrating) tenant returns `Ok(0)` without touching
    /// the disk: its newest persisted snapshot *is* its state of record,
    /// so there is nothing in memory to checkpoint — and rehydrating a
    /// cold tenant just to re-persist it would defeat the eviction.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Store`] if persistence is not configured or the
    /// write fails; [`ServiceError::UnknownTenant`] if not registered.
    pub fn persist_tenant(&self, tenant: &str) -> Result<u64, ServiceError> {
        let Some(sp) = &self.persist else {
            return Err(ServiceError::Store("persistence not configured".into()));
        };
        let Some(state) = self.registry.slot(tenant)?.peek_hot() else {
            return Ok(0);
        };
        // Export under the driver lock so state/generation/watermark are
        // one consistent cut (the worker updates all three under or
        // before the same lock).
        let (exported, generation, watermark) = {
            let driver = state.driver.lock();
            (
                driver.export_state(),
                state.generation.load(Ordering::Relaxed),
                state.applied_watermark.load(Ordering::Relaxed),
            )
        };
        let snap = Snapshot {
            tenant: state.id.clone(),
            epoch: state.epoch,
            generation,
            watermark,
            state: exported,
        };
        // A deregistration landing after the lookup above must win: the
        // defunct stamp is checked inside the tenant's file lock, so
        // this write either precedes the teardown's removal (and is
        // deleted by it) or is skipped.
        let bytes = match sp
            .files
            .persist_unless_defunct(&sp.store, &snap, &state.defunct)
        {
            Ok(Some(bytes)) => bytes,
            Ok(None) => return Err(ServiceError::UnknownTenant(tenant.to_owned())),
            Err(e) => return Err(ServiceError::Store(e.to_string())),
        };
        sp.metrics.snapshots_persisted.inc();
        sp.metrics.snapshot_bytes_written.add(bytes);
        state.applied_since_persist.store(0, Ordering::Relaxed);
        self.obs.events().publish(
            event(EventKind::SnapshotPersisted)
                .tenant(tenant)
                .detail(format!("generation {generation}, {bytes} bytes (admin)")),
        );
        Ok(bytes)
    }

    /// [`SmartpickService::persist_tenant`] for every registered tenant.
    /// Returns how many were persisted; the first store failure aborts.
    ///
    /// # Errors
    ///
    /// See [`SmartpickService::persist_tenant`] ([`ServiceError::UnknownTenant`]
    /// from a concurrent deregistration is skipped, not an error).
    pub fn persist_all(&self) -> Result<usize, ServiceError> {
        let mut persisted = 0;
        for id in self.registry.ids() {
            match self.persist_tenant(&id) {
                Ok(_) => persisted += 1,
                Err(ServiceError::UnknownTenant(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(persisted)
    }

    // ---------------------------------------------------------------
    // Residency (admin API)
    // ---------------------------------------------------------------

    /// Evicts one tenant to its durable snapshot right now, regardless
    /// of the configured policy — the operator "take this tenant cold"
    /// hook. `Ok(false)` means the tenant stayed hot: pinned by pending
    /// retrain reports, mid-apply, already cold, or being deregistered.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Store`] if persistence is not configured;
    /// [`ServiceError::UnknownTenant`] if not registered.
    pub fn evict_tenant(&self, tenant: &str) -> Result<bool, ServiceError> {
        self.residency.evict(tenant)
    }

    /// How many tenants are resident (hot) right now. With
    /// [`ServiceConfig::max_resident_tenants`] set this converges to at
    /// most the cap (pinned tenants can exceed it transiently).
    pub fn resident_tenants(&self) -> usize {
        self.registry.resident_count()
    }

    /// Runs one residency sweep on the caller's thread — deterministic
    /// scheduling for tests and benches; production sweeps ride the
    /// supervisor poll loop. Not part of the public API contract.
    #[doc(hidden)]
    pub fn residency_sweep(&self) {
        self.residency.sweep_now();
    }

    /// Shards the supervisor has given up on.
    fn failed_shards(&self) -> impl Iterator<Item = usize> {
        self.supervisor
            .status()
            .into_iter()
            .filter(|s| s.state == WorkerState::Failed)
            .map(|s| s.shard)
    }

    fn shard_has_failed(&self, shard: usize) -> bool {
        self.supervisor
            .status()
            .get(shard)
            .is_some_and(|s| s.state == WorkerState::Failed)
    }

    // ---------------------------------------------------------------
    // Observability
    // ---------------------------------------------------------------

    /// Reports currently waiting across all update-queue shards.
    pub fn queue_depth(&self) -> usize {
        self.queues.total_len()
    }

    /// Per-worker-shard queue depths, indexed by shard.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.queues.depths()
    }

    /// Runs `f` against a tenant's driver under its per-tenant lock — an
    /// admin/debug window into training-side state (history, billing,
    /// retrain counts) the snapshot read path never exposes. Blocks any
    /// retrain-worker apply for that tenant while `f` runs, so keep `f`
    /// short.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownTenant`] if not registered.
    pub fn inspect_tenant<R>(
        &self,
        tenant: &str,
        f: impl FnOnce(&Smartpick) -> R,
    ) -> Result<R, ServiceError> {
        let state = self.resolve(tenant)?;
        let driver = state.driver.lock();
        Ok(f(&driver))
    }

    /// A point-in-time view of one tenant.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownTenant`] if not registered.
    pub fn tenant_stats(&self, tenant: &str) -> Result<TenantStats, ServiceError> {
        let state = self.resolve(tenant)?;
        Ok(self.stats_of(&state))
    }

    /// A point-in-time aggregate view of the whole service.
    ///
    /// Aggregates are read from the service-wide total counters the hot
    /// path increments alongside the per-tenant ones — a handful of
    /// relaxed atomic loads. This call never takes a registry shard lock,
    /// so it cannot contend with `predict`/`determine`, and the totals
    /// include the full history of deregistered tenants by construction.
    pub fn stats(&self) -> ServiceStats {
        let depths = self.queues.depths();
        let worker_shards: Vec<WorkerShardStats> = self
            .shard_counters
            .iter()
            .zip(&depths)
            .enumerate()
            .map(|(shard, (c, &depth))| WorkerShardStats {
                shard,
                depth,
                reports_applied: c.reports_applied.get(),
                retrains: c.retrains.get(),
                batches: c.batches.get(),
            })
            .collect();
        let t = &self.totals;
        ServiceStats {
            tenants: self.tenants_gauge.get().max(0) as usize,
            queue_depth: depths.iter().sum(),
            worker_shards,
            predictions: t.predictions.get(),
            executions: t.executions.get(),
            reports_enqueued: t.reports_enqueued.get(),
            reports_applied: t.reports_applied.get(),
            retrains: t.retrains.get(),
            rejections: t.rejections.get(),
            apply_failures: t.apply_failures.get(),
            stale_predictions: t.stale_predictions.get(),
            predict_latency: self.predict_latency.summary(),
        }
    }

    fn stats_of(&self, state: &TenantState) -> TenantStats {
        let published = state.published_at_us.load(Ordering::Relaxed);
        let snapshot_age = Duration::from_micros(self.now_us().saturating_sub(published));
        TenantStats {
            tenant: state.id.clone(),
            worker_shard: self.worker_shard_of(&state.id),
            // Derived from the same age sample reported below, so the
            // flag and the age can never disagree within one view.
            snapshot_stale: self
                .config
                .max_snapshot_age
                .is_some_and(|max| snapshot_age > max),
            stale_predictions: state.counters.stale_predictions.get(),
            predictions: state.counters.predictions.get(),
            executions: state.counters.executions.get(),
            reports_enqueued: state.counters.reports_enqueued.get(),
            reports_applied: state.counters.reports_applied.get(),
            retrains: state.counters.retrains.get(),
            rejections: state.counters.rejections.get(),
            apply_failures: state.counters.apply_failures.get(),
            pending_reports: state.counters.pending.load(Ordering::Relaxed),
            snapshot_generation: state.generation.load(Ordering::Relaxed),
            snapshot_age,
        }
    }

    /// One versioned envelope of every registered metric plus the last
    /// `max_events` events — what `Request::Scrape` answers with.
    /// Point-in-time gauges (queue depths) are refreshed first; counter
    /// values are sampled with relaxed atomic loads. Like
    /// [`SmartpickService::stats`], this never touches a registry shard
    /// lock.
    pub fn scrape(&self, max_events: usize) -> ScrapeEnvelope {
        let depths = self.queues.depths();
        for (gauge, &depth) in self.shard_depth_gauges.iter().zip(&depths) {
            gauge.set(depth as i64);
        }
        self.queue_depth_gauge
            .set(depths.iter().sum::<usize>() as i64);
        self.residency.refresh_gauge();
        self.obs.scrape(max_events)
    }

    /// Liveness/readiness: ready iff every retrain worker is alive (or
    /// cleanly done), no shard has queued work without progress past the
    /// configured [`ServiceConfig::stall_deadline`], and the service has
    /// not been shut down. The report carries per-shard detail (state,
    /// restarts, stall flag, depth) and one human-readable reason per
    /// failure.
    pub fn health(&self) -> HealthReport {
        let statuses = self.supervisor.status();
        let depths = self.queues.depths();
        let now = self.now_us();
        let deadline_us = self.config.stall_deadline.as_micros() as u64;
        let closed = self.queues.is_closed();
        let mut reasons = Vec::new();
        if closed {
            reasons.push("service is shut down".to_owned());
        }
        if self.residency.paused() {
            reasons.push(
                "residency limits configured but store unavailable; eviction paused".to_owned(),
            );
        }
        let workers: Vec<WorkerHealth> = statuses
            .iter()
            .map(|s| {
                let depth = depths.get(s.shard).copied().unwrap_or(0);
                let last = self
                    .shard_counters
                    .get(s.shard)
                    .map(|c| c.last_progress_us.load(Ordering::Relaxed))
                    .unwrap_or(0);
                let stalled = s.state == WorkerState::Alive
                    && depth > 0
                    && now.saturating_sub(last) > deadline_us;
                match s.state {
                    WorkerState::Failed => reasons.push(format!(
                        "worker shard {} failed permanently ({})",
                        s.shard,
                        s.last_panic.as_deref().unwrap_or("spawn failure")
                    )),
                    WorkerState::Alive if stalled => reasons.push(format!(
                        "worker shard {} stalled: {} queued, no progress in {:?}",
                        s.shard, depth, self.config.stall_deadline
                    )),
                    _ => {}
                }
                WorkerHealth {
                    shard: s.shard,
                    state: s.state.name().to_owned(),
                    restarts: s.restarts,
                    stalled,
                    queue_depth: depth,
                }
            })
            .collect();
        HealthReport {
            live: true,
            ready: reasons.is_empty(),
            reasons,
            workers,
        }
    }

    /// The supervisor's per-shard view (state, restarts, last panic).
    pub fn worker_status(&self) -> Vec<WorkerStatus> {
        self.supervisor.status()
    }

    /// Fault injection for supervision tests: panics the retrain worker
    /// owning `shard` by feeding it a poison message through its own
    /// queue (so the panic happens mid-stream, exactly where a real bug
    /// would). The supervisor then applies the configured restart policy;
    /// any batch the worker had in flight is re-queued first, so no
    /// accepted report is lost. Not part of the public API contract.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Stopped`] after shutdown.
    ///
    /// # Panics
    ///
    /// Panics (in the *calling* thread) if `shard` is out of range.
    #[doc(hidden)]
    pub fn poison_worker(&self, shard: usize) -> Result<(), ServiceError> {
        assert!(
            shard < self.queues.shard_count(),
            "shard {shard} out of range"
        );
        self.queues
            .push_blocking(shard, WorkerMsg::Poison)
            .map_err(|_| ServiceError::Stopped)
    }

    // ---------------------------------------------------------------
    // Lifecycle
    // ---------------------------------------------------------------

    /// Shuts the service down: stops admitting work, lets every worker
    /// drain its queue shard, and joins them all (plus the supervisor).
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.queues.close();
        self.supervisor.shutdown();
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

impl Drop for SmartpickService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Mixed into the caller's seed so the execution RNG stream differs from
/// the search's.
const EXEC_SEED_MIX: u64 = 0x5EED_EC5E;

/// What one enqueue attempt did: a final answer, or "the state went cold
/// under you — re-resolve and try again" (the report rides back out so
/// the retry does not clone it; boxed so the common `Done` return stays
/// small — the box only allocates on the rare lost-race path).
enum Enqueue {
    Done(Result<(), ServiceError>),
    Retired(Box<CompletedRun>),
}
