//! The `SmartpickService` façade: many threads, many tenants, one
//! Smartpick per tenant.

use std::sync::atomic::Ordering;
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use smartpick_core::driver::{QueryOutcome, Smartpick};
use smartpick_core::wp::{
    ConstraintMode, Determination, PredictionRequest, WorkloadPredictionService,
};
use smartpick_engine::QueryProfile;

use crate::error::ServiceError;
use crate::queue::{PushRejected, ShardedQueue};
use crate::registry::{tenant_hash, ShardedRegistry, TenantState};
use crate::stats::{
    LatencyHistogram, ServiceStats, ShardCounters, TenantCounters, TenantStats, WorkerShardStats,
};
use crate::worker::{run_worker, CompletedRun, WorkerMsg};

/// Tunables for a [`SmartpickService`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Registry shards (tenants are hash-routed across them).
    pub shards: usize,
    /// Total capacity of the update queues (service-wide backpressure),
    /// divided evenly across the worker shards.
    pub queue_capacity: usize,
    /// Max unapplied reports one tenant may have in flight.
    pub tenant_pending_cap: usize,
    /// Max reports a worker applies per batch before republishing
    /// snapshots.
    pub retrain_batch_max: usize,
    /// Background retrain workers. Each owns one tenant-hash-sharded
    /// slice of the update queue, so retrains for distinct tenants
    /// proceed in parallel while each tenant's reports stay ordered.
    pub retrain_workers: usize,
    /// Snapshot-staleness SLO: a prediction served from a snapshot older
    /// than this is *flagged* (never shed) — it counts into
    /// [`TenantStats::stale_predictions`] and trips
    /// [`TenantStats::snapshot_stale`]. `None` disables the check.
    pub max_snapshot_age: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 16,
            queue_capacity: 1024,
            tenant_pending_cap: 64,
            retrain_batch_max: 32,
            retrain_workers: 2,
            max_snapshot_age: None,
        }
    }
}

/// A thread-safe, multi-tenant prediction service over
/// [`smartpick_core::Smartpick`] — "smartpickd".
///
/// Concurrency model, in one paragraph: tenants live in a **sharded
/// registry** (hash-routed `RwLock<HashMap>` shards, held only for an
/// `Arc` clone); `predict`/`determine` run against each tenant's
/// **immutable model snapshot** (`Arc<WorkloadPredictor>`), so reads
/// never block behind a writer; completed runs are fed through **bounded,
/// tenant-hash-sharded update queues** to N background **retrain
/// workers** (one per shard) that batch them per tenant, apply them to
/// the owning driver under its per-tenant mutex, and republish the
/// snapshot — the paper's §4.2 monitor thread, sharded the same way as
/// the registry so distinct tenants retrain in parallel while each
/// tenant's reports stay FIFO. **Admission control** (queue capacity +
/// per-tenant pending quotas) sheds training feedback under overload
/// instead of ever failing or delaying the read path.
///
/// # Example
///
/// ```no_run
/// use smartpick_cloudsim::{CloudEnv, Provider};
/// use smartpick_core::driver::Smartpick;
/// use smartpick_core::properties::SmartpickProperties;
/// use smartpick_service::SmartpickService;
/// use smartpick_workloads::tpcds;
///
/// let training: Vec<_> = tpcds::TRAINING_QUERIES
///     .iter()
///     .map(|&q| tpcds::query(q, 100.0).expect("catalog query"))
///     .collect();
/// let driver = Smartpick::train(
///     CloudEnv::new(Provider::Aws),
///     SmartpickProperties::default(),
///     &training,
///     42,
/// )?;
/// let service = SmartpickService::with_defaults();
/// service.register_tenant("acme", driver)?;
/// let outcome = service.submit("acme", &tpcds::query(11, 100.0).expect("q"), 7)?;
/// println!("{} in {:.1}s", outcome.determination.allocation, outcome.report.seconds());
/// # Ok::<(), smartpick_service::ServiceError>(())
/// ```
#[derive(Debug)]
pub struct SmartpickService {
    registry: ShardedRegistry,
    queues: ShardedQueue<WorkerMsg>,
    workers: Vec<JoinHandle<()>>,
    shard_counters: Box<[Arc<ShardCounters>]>,
    config: ServiceConfig,
    epoch: Instant,
    predict_latency: LatencyHistogram,
    /// Counters folded in from deregistered tenants, so service-wide
    /// aggregates stay monotonic across tenant churn.
    retired: TenantCounters,
}

impl SmartpickService {
    /// Starts a service (and its retrain worker threads) with `config`.
    ///
    /// # Panics
    ///
    /// Panics if any `config` field is zero.
    pub fn new(config: ServiceConfig) -> Self {
        assert!(config.shards > 0, "shards must be positive");
        assert!(config.queue_capacity > 0, "queue_capacity must be positive");
        assert!(
            config.tenant_pending_cap > 0,
            "tenant_pending_cap must be positive"
        );
        assert!(
            config.retrain_batch_max > 0,
            "retrain_batch_max must be positive"
        );
        assert!(
            config.retrain_workers > 0,
            "retrain_workers must be positive"
        );
        let queues = ShardedQueue::new(config.retrain_workers, config.queue_capacity);
        let shard_counters: Box<[Arc<ShardCounters>]> = (0..config.retrain_workers)
            .map(|_| Arc::new(ShardCounters::default()))
            .collect();
        let epoch = Instant::now();
        #[allow(clippy::expect_used)] // mirrored by the lint:allow below
        let workers = shard_counters
            .iter()
            .enumerate()
            .map(|(i, counters)| {
                let shard_queue = queues.shard(i);
                let counters = Arc::clone(counters);
                let batch_max = config.retrain_batch_max;
                std::thread::Builder::new()
                    .name(format!("smartpickd-retrain-{i}"))
                    .spawn(move || run_worker(shard_queue, batch_max, epoch, counters))
                    // lint:allow(panic-free-server-paths, reason = "startup-time spawn in new(); failing fast here is documented under # Panics and no request is in flight yet")
                    .expect("spawn retrain worker")
            })
            .collect();
        SmartpickService {
            registry: ShardedRegistry::new(config.shards),
            queues,
            workers,
            shard_counters,
            config,
            epoch,
            predict_latency: LatencyHistogram::new(),
            retired: TenantCounters::default(),
        }
    }

    /// Starts a service with [`ServiceConfig::default`].
    pub fn with_defaults() -> Self {
        SmartpickService::new(ServiceConfig::default())
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    // ---------------------------------------------------------------
    // Tenant management
    // ---------------------------------------------------------------

    /// Registers a tenant owning a trained `driver`. Its first snapshot
    /// is published immediately.
    ///
    /// # Errors
    ///
    /// [`ServiceError::TenantExists`] on a duplicate id,
    /// [`ServiceError::Stopped`] after shutdown.
    pub fn register_tenant(
        &self,
        id: impl Into<String>,
        driver: Smartpick,
    ) -> Result<(), ServiceError> {
        if self.queues.is_closed() {
            return Err(ServiceError::Stopped);
        }
        let id = id.into();
        self.registry
            .insert(TenantState::new(id, driver, self.now_us()))
    }

    /// Registers a tenant forked from `template` (shares the trained
    /// model copy-on-write; owns fresh history/billing/monitor state).
    /// The cheap way to stamp out many tenants from one kick-start
    /// training run.
    ///
    /// # Errors
    ///
    /// See [`SmartpickService::register_tenant`].
    pub fn register_fork(
        &self,
        id: impl Into<String>,
        template: &Smartpick,
        seed: u64,
    ) -> Result<(), ServiceError> {
        self.register_tenant(id, template.fork(seed))
    }

    /// Removes a tenant. In-flight reports already accepted for it are
    /// still applied (the worker holds its own handle) but no new work is
    /// admitted. Its counters are folded into the service-wide totals so
    /// [`SmartpickService::stats`] aggregates never run backwards; applies
    /// that complete *after* the fold are the one sliver the aggregates
    /// can miss.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownTenant`] if not registered.
    pub fn deregister_tenant(&self, id: &str) -> Result<(), ServiceError> {
        let state = self.registry.remove(id)?;
        state.counters.fold_into(&self.retired);
        Ok(())
    }

    /// Registered tenant ids, sorted.
    pub fn tenants(&self) -> Vec<String> {
        self.registry.ids()
    }

    // ---------------------------------------------------------------
    // Read path (snapshot predictions)
    // ---------------------------------------------------------------

    /// Runs a full resource determination for `tenant` against its
    /// current model snapshot. Never blocks behind retraining: the
    /// snapshot is an immutable `Arc`d model, and the only locks touched
    /// (shard + snapshot cell) are held for the duration of an `Arc`
    /// clone.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownTenant`], or a core prediction failure.
    pub fn predict(
        &self,
        tenant: &str,
        request: &PredictionRequest,
    ) -> Result<Determination, ServiceError> {
        let state = self.registry.get(tenant)?;
        self.predict_on(&state, request)
    }

    /// The snapshot read against an already-resolved tenant.
    fn predict_on(
        &self,
        state: &TenantState,
        request: &PredictionRequest,
    ) -> Result<Determination, ServiceError> {
        let start = Instant::now();
        let snapshot = state.read_snapshot();
        let stale = self.snapshot_is_stale(state);
        let determination = snapshot.determine(request)?;
        // Staleness SLO: flag (never delay or shed) predictions served
        // from a snapshot past the configured age bound. Counted only
        // for predictions actually served, so the counter can never
        // exceed `predictions`.
        if stale {
            state
                .counters
                .stale_predictions
                .fetch_add(1, Ordering::Relaxed);
        }
        state.counters.predictions.fetch_add(1, Ordering::Relaxed);
        self.predict_latency.record(start.elapsed());
        Ok(determination)
    }

    /// Whether `state`'s current snapshot is older than the configured
    /// [`ServiceConfig::max_snapshot_age`] (always `false` when unset).
    fn snapshot_is_stale(&self, state: &TenantState) -> bool {
        let Some(max_age) = self.config.max_snapshot_age else {
            return false;
        };
        let published = state.published_at_us.load(Ordering::Relaxed);
        let age_us = self.now_us().saturating_sub(published);
        age_us > max_age.as_micros() as u64
    }

    /// Answers every request in one batched snapshot read: the tenant is
    /// resolved once, **one** snapshot `Arc` is cloned out, and the
    /// whole batch is priced by a single tree-outer forest pass
    /// (`WorkloadPredictor::determine_batch`), so N queries cost one
    /// registry hop + one snapshot acquisition instead of N of each.
    /// Results are identical to N sequential [`SmartpickService::predict`]
    /// calls with the same requests against an unchanged snapshot, and
    /// the tenant's prediction counter advances by N.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownTenant`], or a core prediction failure —
    /// the batch fails whole, before any partial results.
    pub fn determine_batch(
        &self,
        tenant: &str,
        requests: &[PredictionRequest],
    ) -> Result<Vec<Determination>, ServiceError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let state = self.registry.get(tenant)?;
        let start = Instant::now();
        let snapshot = state.read_snapshot();
        let stale = self.snapshot_is_stale(&state);
        let determinations = snapshot.determine_batch(requests)?;
        let n = requests.len() as u64;
        if stale {
            state
                .counters
                .stale_predictions
                .fetch_add(n, Ordering::Relaxed);
        }
        state.counters.predictions.fetch_add(n, Ordering::Relaxed);
        // One latency sample for the whole batch: the histogram tracks
        // serving operations, and the batch is served as one.
        self.predict_latency.record(start.elapsed());
        Ok(determinations)
    }

    /// Convenience [`SmartpickService::predict`]: hybrid search with the
    /// tenant's configured knob.
    ///
    /// # Errors
    ///
    /// See [`SmartpickService::predict`].
    pub fn determine(
        &self,
        tenant: &str,
        query: &QueryProfile,
        seed: u64,
    ) -> Result<Determination, ServiceError> {
        let state = self.registry.get(tenant)?;
        self.predict_on(
            &state,
            &PredictionRequest {
                query: query.clone(),
                knob: state.knob,
                constraint: ConstraintMode::Hybrid,
                seed,
            },
        )
    }

    /// The full online path: determine against the tenant's snapshot,
    /// execute on its shared Resource Manager, and feed the completed run
    /// back through the update queue.
    ///
    /// Retraining is asynchronous here, so the returned outcome always
    /// has `retrain: None`; retrains show up in
    /// [`SmartpickService::tenant_stats`] once the worker applies the
    /// report. Under backpressure the *feedback* is shed (visible as a
    /// rejection in the stats) — the query result itself is never
    /// delayed or dropped.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownTenant`], or a core prediction/execution
    /// failure.
    pub fn submit(
        &self,
        tenant: &str,
        query: &QueryProfile,
        seed: u64,
    ) -> Result<QueryOutcome, ServiceError> {
        // Resolve once and thread the state through: re-resolving per step
        // would let a concurrent deregister/re-register swap the tenant
        // out from under us mid-submission (feedback applied to the wrong
        // tenant instance) and would cost extra shard hops on the hot
        // path.
        let state = self.registry.get(tenant)?;
        let determination = self.predict_on(
            &state,
            &PredictionRequest {
                query: query.clone(),
                knob: state.knob,
                constraint: ConstraintMode::Hybrid,
                seed,
            },
        )?;
        let report = state
            .rm
            .execute(query, &determination.allocation, seed ^ EXEC_SEED_MIX)
            .map_err(smartpick_core::SmartpickError::from)?;
        state.counters.executions.fetch_add(1, Ordering::Relaxed);
        // Feedback is best-effort under load: a shed report costs model
        // freshness, not correctness.
        let _ = self.enqueue_report(
            &state,
            CompletedRun {
                query: query.clone(),
                determination: determination.clone(),
                report: report.clone(),
            },
        );
        Ok(QueryOutcome {
            determination,
            report,
            retrain: None,
        })
    }

    // ---------------------------------------------------------------
    // Write path (update queue → retrain worker)
    // ---------------------------------------------------------------

    /// Feeds one completed run into the batched update queue for the
    /// retrain worker to apply.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownTenant`]; [`ServiceError::QuotaExceeded`]
    /// when the tenant is over its pending cap;
    /// [`ServiceError::QueueFull`] under service-wide backpressure;
    /// [`ServiceError::Stopped`] after shutdown.
    pub fn report_run(&self, tenant: &str, run: CompletedRun) -> Result<(), ServiceError> {
        let state = self.registry.get(tenant)?;
        self.enqueue_report(&state, run)
    }

    /// Quota check + enqueue against an already-resolved tenant.
    fn enqueue_report(
        &self,
        state: &Arc<TenantState>,
        run: CompletedRun,
    ) -> Result<(), ServiceError> {
        // Reserve quota (compensating add so concurrent reservations
        // cannot sneak past the cap).
        let cap = self.config.tenant_pending_cap;
        let prior = state.counters.pending.fetch_add(1, Ordering::Relaxed);
        if prior >= cap {
            state.counters.pending.fetch_sub(1, Ordering::Relaxed);
            state.counters.rejections.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::QuotaExceeded {
                tenant: state.id.clone(),
                pending: prior,
                cap,
            });
        }

        let msg = WorkerMsg::Job {
            tenant: Arc::clone(state),
            run: Box::new(run),
        };
        let shard = self.worker_shard_of(&state.id);
        match self.queues.try_push(shard, msg) {
            Ok(()) => {
                state
                    .counters
                    .reports_enqueued
                    .fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(rejected) => {
                state.counters.pending.fetch_sub(1, Ordering::Relaxed);
                state.counters.rejections.fetch_add(1, Ordering::Relaxed);
                Err(match rejected {
                    PushRejected::Full => ServiceError::QueueFull {
                        capacity: self.queues.shard_capacity(),
                    },
                    PushRejected::Closed => ServiceError::Stopped,
                })
            }
        }
    }

    /// The retrain-worker shard `tenant` routes to (same hash as the
    /// registry's shard routing).
    fn worker_shard_of(&self, tenant: &str) -> usize {
        self.queues.shard_of(tenant_hash(tenant))
    }

    /// Blocks until every report enqueued before this call has been
    /// applied and its tenant's snapshot republished — on every worker
    /// shard. Returns `false` if the service is already shut down.
    pub fn flush(&self) -> bool {
        // One flush token per shard; the blocking pushes park on each
        // queue's not-full condvar, so a flush against a saturated queue
        // sleeps instead of spinning against the very workers it is
        // waiting on.
        let mut pending = Vec::with_capacity(self.queues.shard_count());
        for shard in 0..self.queues.shard_count() {
            let (ack, done) = sync_channel(1);
            if self
                .queues
                .push_blocking(shard, WorkerMsg::Flush(ack))
                .is_err()
            {
                return false;
            }
            pending.push(done);
        }
        pending.into_iter().all(|done| done.recv().is_ok())
    }

    // ---------------------------------------------------------------
    // Observability
    // ---------------------------------------------------------------

    /// Reports currently waiting across all update-queue shards.
    pub fn queue_depth(&self) -> usize {
        self.queues.total_len()
    }

    /// Per-worker-shard queue depths, indexed by shard.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.queues.depths()
    }

    /// Runs `f` against a tenant's driver under its per-tenant lock — an
    /// admin/debug window into training-side state (history, billing,
    /// retrain counts) the snapshot read path never exposes. Blocks any
    /// retrain-worker apply for that tenant while `f` runs, so keep `f`
    /// short.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownTenant`] if not registered.
    pub fn inspect_tenant<R>(
        &self,
        tenant: &str,
        f: impl FnOnce(&Smartpick) -> R,
    ) -> Result<R, ServiceError> {
        let state = self.registry.get(tenant)?;
        let driver = state.driver.lock();
        Ok(f(&driver))
    }

    /// A point-in-time view of one tenant.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownTenant`] if not registered.
    pub fn tenant_stats(&self, tenant: &str) -> Result<TenantStats, ServiceError> {
        let state = self.registry.get(tenant)?;
        Ok(self.stats_of(&state))
    }

    /// A point-in-time aggregate view of the whole service. Aggregates
    /// include the folded-in history of deregistered tenants, so they are
    /// monotonic across tenant churn.
    pub fn stats(&self) -> ServiceStats {
        let depths = self.queues.depths();
        let worker_shards: Vec<WorkerShardStats> = self
            .shard_counters
            .iter()
            .zip(&depths)
            .enumerate()
            .map(|(shard, (c, &depth))| WorkerShardStats {
                shard,
                depth,
                reports_applied: c.reports_applied.load(Ordering::Relaxed),
                retrains: c.retrains.load(Ordering::Relaxed),
                batches: c.batches.load(Ordering::Relaxed),
            })
            .collect();
        let r = &self.retired;
        let mut stats = ServiceStats {
            tenants: self.registry.len(),
            queue_depth: depths.iter().sum(),
            worker_shards,
            predictions: r.predictions.load(Ordering::Relaxed),
            executions: r.executions.load(Ordering::Relaxed),
            reports_enqueued: r.reports_enqueued.load(Ordering::Relaxed),
            reports_applied: r.reports_applied.load(Ordering::Relaxed),
            retrains: r.retrains.load(Ordering::Relaxed),
            rejections: r.rejections.load(Ordering::Relaxed),
            apply_failures: r.apply_failures.load(Ordering::Relaxed),
            stale_predictions: r.stale_predictions.load(Ordering::Relaxed),
            predict_latency: self.predict_latency.summary(),
        };
        self.registry.for_each(|state| {
            let t = self.stats_of(state);
            stats.predictions += t.predictions;
            stats.executions += t.executions;
            stats.reports_enqueued += t.reports_enqueued;
            stats.reports_applied += t.reports_applied;
            stats.retrains += t.retrains;
            stats.rejections += t.rejections;
            stats.apply_failures += t.apply_failures;
            stats.stale_predictions += t.stale_predictions;
        });
        stats
    }

    fn stats_of(&self, state: &TenantState) -> TenantStats {
        let published = state.published_at_us.load(Ordering::Relaxed);
        let snapshot_age = Duration::from_micros(self.now_us().saturating_sub(published));
        TenantStats {
            tenant: state.id.clone(),
            worker_shard: self.worker_shard_of(&state.id),
            // Derived from the same age sample reported below, so the
            // flag and the age can never disagree within one view.
            snapshot_stale: self
                .config
                .max_snapshot_age
                .is_some_and(|max| snapshot_age > max),
            stale_predictions: state.counters.stale_predictions.load(Ordering::Relaxed),
            predictions: state.counters.predictions.load(Ordering::Relaxed),
            executions: state.counters.executions.load(Ordering::Relaxed),
            reports_enqueued: state.counters.reports_enqueued.load(Ordering::Relaxed),
            reports_applied: state.counters.reports_applied.load(Ordering::Relaxed),
            retrains: state.counters.retrains.load(Ordering::Relaxed),
            rejections: state.counters.rejections.load(Ordering::Relaxed),
            apply_failures: state.counters.apply_failures.load(Ordering::Relaxed),
            pending_reports: state.counters.pending.load(Ordering::Relaxed),
            snapshot_generation: state.generation.load(Ordering::Relaxed),
            snapshot_age,
        }
    }

    // ---------------------------------------------------------------
    // Lifecycle
    // ---------------------------------------------------------------

    /// Shuts the service down: stops admitting work, lets every worker
    /// drain its queue shard, and joins them all. Idempotent; also runs
    /// on drop.
    pub fn shutdown(&mut self) {
        self.queues.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

impl Drop for SmartpickService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Mixed into the caller's seed so the execution RNG stream differs from
/// the search's.
const EXEC_SEED_MIX: u64 = 0x5EED_EC5E;
