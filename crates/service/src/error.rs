//! Typed rejections the service front-end hands back to clients.

use std::error::Error;
use std::fmt;

use smartpick_core::SmartpickError;

/// Errors reported by [`crate::SmartpickService`].
///
/// Admission-control rejections ([`ServiceError::QueueFull`],
/// [`ServiceError::QuotaExceeded`]) are *retryable*: the work was not
/// accepted and the client should back off and resubmit.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServiceError {
    /// No tenant registered under this id.
    UnknownTenant(String),
    /// A tenant with this id is already registered.
    TenantExists(String),
    /// The tenant's update-queue shard is at capacity (backpressure on
    /// the retrain worker that owns this tenant; other shards may still
    /// have room).
    QueueFull {
        /// The per-shard capacity that was hit
        /// (`queue_capacity / retrain_workers`, rounded up).
        capacity: usize,
    },
    /// The tenant has too many unapplied run reports in flight
    /// (per-tenant quota, so one noisy tenant cannot starve the rest).
    QuotaExceeded {
        /// The offending tenant.
        tenant: String,
        /// Reports currently pending for the tenant.
        pending: usize,
        /// The configured per-tenant cap.
        cap: usize,
    },
    /// The service has been shut down and accepts no new work.
    Stopped,
    /// A prediction / execution / retraining failure from the core.
    Core(SmartpickError),
    /// A durable-store failure (opening the store directory, persisting a
    /// snapshot on request). Runtime store failures on the worker path
    /// degrade to events instead of surfacing here — serving never stops
    /// for the disk.
    Store(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownTenant(id) => write!(f, "unknown tenant `{id}`"),
            ServiceError::TenantExists(id) => write!(f, "tenant `{id}` already registered"),
            ServiceError::QueueFull { capacity } => {
                write!(f, "update queue full ({capacity} reports); retry later")
            }
            ServiceError::QuotaExceeded {
                tenant,
                pending,
                cap,
            } => write!(
                f,
                "tenant `{tenant}` has {pending} pending reports (cap {cap}); retry later"
            ),
            ServiceError::Stopped => write!(f, "service is shut down"),
            ServiceError::Core(e) => write!(f, "core error: {e}"),
            ServiceError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl Error for ServiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServiceError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SmartpickError> for ServiceError {
    fn from(e: SmartpickError) -> Self {
        ServiceError::Core(e)
    }
}

impl ServiceError {
    /// Whether the rejection is transient (back off and retry).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServiceError::QueueFull { .. } | ServiceError::QuotaExceeded { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_retryability() {
        assert!(ServiceError::QueueFull { capacity: 4 }.is_retryable());
        assert!(ServiceError::QuotaExceeded {
            tenant: "t".into(),
            pending: 9,
            cap: 8
        }
        .is_retryable());
        assert!(!ServiceError::UnknownTenant("t".into()).is_retryable());
        assert!(ServiceError::Store("disk full".into())
            .to_string()
            .contains("disk full"));
        assert!(ServiceError::Stopped.to_string().contains("shut down"));
        let e: ServiceError = SmartpickError::NoTrainingData.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServiceError>();
    }
}
