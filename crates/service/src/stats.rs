//! Service observability: lock-free counters and a fixed-bucket latency
//! histogram.
//!
//! Everything here is updated with relaxed atomics on the hot path —
//! stats must never serialise the readers they are measuring.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Power-of-two microsecond buckets: bucket *i* counts samples in
/// `[2^i, 2^(i+1))` µs. 40 buckets cover ~13 days; plenty for a request.
const BUCKETS: usize = 40;

/// A fixed-bucket log₂ latency histogram (microsecond resolution).
///
/// Quantiles are read as the *upper bound* of the bucket containing the
/// requested rank, i.e. estimates are conservative and never more than 2×
/// the true value.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        let us = (latency.as_micros() as u64).max(1);
        let idx = (us.ilog2() as usize).min(BUCKETS - 1);
        // lint:allow(panic-free-server-paths, reason = "idx is clamped to BUCKETS - 1 on the previous line")
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) in microseconds — the upper bound
    /// of the bucket holding that rank. Zero when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }

    /// Mean latency in microseconds. Zero when empty.
    pub fn mean_us(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / count as f64
        }
    }

    /// A point-in-time summary (count, p50, p99, mean).
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            p50_us: self.quantile_us(0.50),
            p99_us: self.quantile_us(0.99),
            mean_us: self.mean_us(),
        }
    }
}

/// A point-in-time latency digest.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Median, microseconds (bucket upper bound).
    pub p50_us: u64,
    /// 99th percentile, microseconds (bucket upper bound).
    pub p99_us: u64,
    /// Mean, microseconds.
    pub mean_us: f64,
}

/// Per-tenant hot-path counters (relaxed atomics).
#[derive(Debug, Default)]
pub(crate) struct TenantCounters {
    pub(crate) predictions: AtomicU64,
    pub(crate) executions: AtomicU64,
    pub(crate) reports_enqueued: AtomicU64,
    pub(crate) reports_applied: AtomicU64,
    pub(crate) retrains: AtomicU64,
    pub(crate) rejections: AtomicU64,
    pub(crate) apply_failures: AtomicU64,
    /// Predictions served from a snapshot past the staleness bound.
    pub(crate) stale_predictions: AtomicU64,
    /// Reports accepted but not yet applied (quota accounting).
    pub(crate) pending: AtomicUsize,
}

impl TenantCounters {
    /// Adds this set's current values into `into` (used to retire a
    /// deregistered tenant's history into the service-wide totals; the
    /// `pending` gauge is deliberately not folded — it is a level, not a
    /// counter).
    pub(crate) fn fold_into(&self, into: &TenantCounters) {
        for (from, to) in [
            (&self.predictions, &into.predictions),
            (&self.executions, &into.executions),
            (&self.reports_enqueued, &into.reports_enqueued),
            (&self.reports_applied, &into.reports_applied),
            (&self.retrains, &into.retrains),
            (&self.rejections, &into.rejections),
            (&self.apply_failures, &into.apply_failures),
            (&self.stale_predictions, &into.stale_predictions),
        ] {
            to.fetch_add(from.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }
}

/// Per-worker-shard counters: how much retrain work each worker has
/// applied (relaxed atomics, owned by the service, written by exactly one
/// worker thread each).
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    pub(crate) reports_applied: AtomicU64,
    pub(crate) retrains: AtomicU64,
    pub(crate) batches: AtomicU64,
}

/// A point-in-time view of one retrain worker's queue shard.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WorkerShardStats {
    /// The shard index (= worker index; tenants route here by hash).
    pub shard: usize,
    /// Reports waiting in this shard's queue right now.
    pub depth: usize,
    /// Reports this worker has applied.
    pub reports_applied: u64,
    /// Retrains this worker's applies fired.
    pub retrains: u64,
    /// Batches this worker has processed.
    pub batches: u64,
}

/// A point-in-time view of one tenant's counters and snapshot state.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TenantStats {
    /// The tenant id.
    pub tenant: String,
    /// The retrain-worker shard this tenant's reports route to.
    pub worker_shard: usize,
    /// Predictions served from snapshots.
    pub predictions: u64,
    /// Queries executed through the service.
    pub executions: u64,
    /// Run reports accepted into the update queue.
    pub reports_enqueued: u64,
    /// Run reports the worker has applied to the driver.
    pub reports_applied: u64,
    /// Retraining tasks the worker's applies fired.
    pub retrains: u64,
    /// Admission-control rejections (quota or queue-full).
    pub rejections: u64,
    /// Reports whose apply failed in the worker.
    pub apply_failures: u64,
    /// Predictions served from a snapshot older than the configured
    /// `max_snapshot_age` (never shed, only counted).
    pub stale_predictions: u64,
    /// Reports accepted but not yet applied.
    pub pending_reports: usize,
    /// How many snapshots have been published (0 = still the registration
    /// snapshot).
    pub snapshot_generation: u64,
    /// Time since the tenant's snapshot was last (re)published.
    pub snapshot_age: Duration,
    /// Whether `snapshot_age` currently exceeds the configured
    /// `max_snapshot_age` bound (always `false` when the bound is unset).
    pub snapshot_stale: bool,
}

/// A point-in-time view of the whole service.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServiceStats {
    /// Registered tenants.
    pub tenants: usize,
    /// Reports sitting in the update queues right now (all shards).
    pub queue_depth: usize,
    /// Per-worker-shard depths and applied counts (one entry per
    /// configured retrain worker).
    pub worker_shards: Vec<WorkerShardStats>,
    /// Sum of per-tenant predictions.
    pub predictions: u64,
    /// Sum of per-tenant executions.
    pub executions: u64,
    /// Sum of per-tenant accepted reports.
    pub reports_enqueued: u64,
    /// Sum of per-tenant applied reports.
    pub reports_applied: u64,
    /// Sum of per-tenant retrains.
    pub retrains: u64,
    /// Sum of per-tenant rejections.
    pub rejections: u64,
    /// Sum of per-tenant apply failures.
    pub apply_failures: u64,
    /// Sum of per-tenant stale-snapshot predictions.
    pub stale_predictions: u64,
    /// Snapshot-read (`predict`/`determine`) latency digest.
    pub predict_latency: LatencySummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_recorded_spread() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // bucket [64, 128)
        }
        h.record(Duration::from_millis(10)); // bucket [8192, 16384)
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.5), 128);
        assert_eq!(h.quantile_us(0.99), 128);
        assert_eq!(h.quantile_us(1.0), 16384);
        assert!(h.mean_us() > 100.0 && h.mean_us() < 300.0);
        let s = h.summary();
        assert_eq!(s.p50_us, 128);
        assert_eq!(s.count, 100);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.summary(), LatencySummary::default());
    }

    #[test]
    fn sub_microsecond_samples_land_in_first_bucket() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.quantile_us(1.0), 2);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(Duration::from_micros(t * 100 + i % 50 + 1));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), 8000);
    }
}
