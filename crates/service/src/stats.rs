//! Service observability: counter sets over the `smartpick_obs` metrics
//! registry, plus the public stats shapes the wire protocol carries.
//!
//! Everything here is updated with relaxed atomics on the hot path —
//! stats must never serialise the readers they are measuring. Counters
//! are registered in the shared [`MetricsRegistry`] under dot-separated
//! names (`service.*` for process totals, `tenant.<id>.*` per tenant,
//! `service.worker.<shard>.*` per retrain shard), so one `Scrape` sees
//! the same numbers [`ServiceStats`] reports — and the hot path
//! increments *both* its tenant counter and the service total, which is
//! what lets [`crate::SmartpickService::stats`] aggregate with pure
//! atomic loads instead of walking the tenant registry under its shard
//! locks.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use smartpick_obs::{Counter, MetricsRegistry};

pub use smartpick_obs::{LatencyHistogram, LatencySummary};

/// One scope's worth of hot-path counters (relaxed atomics), registered
/// under `<prefix>.<field>` in the metrics registry. Used twice: once
/// per tenant (`tenant.<id>`) and once for the service-wide totals
/// (`service`).
#[derive(Debug)]
pub(crate) struct TenantCounters {
    pub(crate) predictions: Arc<Counter>,
    pub(crate) executions: Arc<Counter>,
    pub(crate) reports_enqueued: Arc<Counter>,
    pub(crate) reports_applied: Arc<Counter>,
    pub(crate) retrains: Arc<Counter>,
    pub(crate) rejections: Arc<Counter>,
    pub(crate) apply_failures: Arc<Counter>,
    /// Predictions served from a snapshot past the staleness bound.
    pub(crate) stale_predictions: Arc<Counter>,
    /// Reports accepted but not yet applied (quota accounting; a level,
    /// not a counter, so it stays a plain atomic off the registry).
    pub(crate) pending: AtomicUsize,
}

impl TenantCounters {
    /// Registers this scope's counters under `<prefix>.<field>`
    /// (get-or-create). Used for the never-churning `service` totals
    /// scope; per-tenant scopes use [`TenantCounters::detached`] +
    /// [`TenantCounters::install`] so teardown can be identity-keyed.
    pub(crate) fn register(metrics: &MetricsRegistry, prefix: &str) -> TenantCounters {
        let c = |field: &str| metrics.counter(&format!("{prefix}.{field}"));
        TenantCounters {
            predictions: c("predictions"),
            executions: c("executions"),
            reports_enqueued: c("reports_enqueued"),
            reports_applied: c("reports_applied"),
            retrains: c("retrains"),
            rejections: c("rejections"),
            apply_failures: c("apply_failures"),
            stale_predictions: c("stale_predictions"),
            pending: AtomicUsize::new(0),
        }
    }

    /// Fresh counter instances not (yet) registered anywhere. A tenant
    /// registration builds its state around these and only *installs*
    /// them into the scrape after its registry insert succeeds — so a
    /// rejected duplicate never touches the incumbent's metrics, and a
    /// later [`TenantCounters::uninstall`] removes exactly these
    /// instances and nothing a re-registration put in their place.
    pub(crate) fn detached() -> TenantCounters {
        TenantCounters {
            predictions: Arc::new(Counter::new()),
            executions: Arc::new(Counter::new()),
            reports_enqueued: Arc::new(Counter::new()),
            reports_applied: Arc::new(Counter::new()),
            retrains: Arc::new(Counter::new()),
            rejections: Arc::new(Counter::new()),
            apply_failures: Arc::new(Counter::new()),
            stale_predictions: Arc::new(Counter::new()),
            pending: AtomicUsize::new(0),
        }
    }

    /// The `(field name, instance)` pairs this scope scrapes as.
    fn fields(&self) -> [(&'static str, &Arc<Counter>); 8] {
        [
            ("predictions", &self.predictions),
            ("executions", &self.executions),
            ("reports_enqueued", &self.reports_enqueued),
            ("reports_applied", &self.reports_applied),
            ("retrains", &self.retrains),
            ("rejections", &self.rejections),
            ("apply_failures", &self.apply_failures),
            ("stale_predictions", &self.stale_predictions),
        ]
    }

    /// Binds this scope's instances under `<prefix>.<field>`, replacing
    /// any previous registration of those names.
    pub(crate) fn install(&self, metrics: &MetricsRegistry, prefix: &str) {
        for (field, counter) in self.fields() {
            metrics.install_counter(&format!("{prefix}.{field}"), counter);
        }
    }

    /// Unregisters `<prefix>.<field>` names still bound to *these*
    /// instances (identity-keyed, so a concurrent re-registration's
    /// fresh counters are never pruned). Returns how many were removed.
    pub(crate) fn uninstall(&self, metrics: &MetricsRegistry, prefix: &str) -> usize {
        let mut removed = 0;
        for (field, counter) in self.fields() {
            if metrics.remove_counter_exact(&format!("{prefix}.{field}"), counter) {
                removed += 1;
            }
        }
        removed
    }
}

/// Per-worker-shard counters: how much retrain work each worker has
/// applied (registry-backed, written by exactly one worker thread each),
/// plus the progress stamp the health check's stall detector reads.
#[derive(Debug)]
pub(crate) struct ShardCounters {
    pub(crate) reports_applied: Arc<Counter>,
    pub(crate) retrains: Arc<Counter>,
    pub(crate) batches: Arc<Counter>,
    /// When this shard last finished a batch, µs since the service
    /// epoch. A shard with queued work and no progress past the
    /// configured stall deadline is reported stalled by
    /// [`crate::SmartpickService::health`].
    pub(crate) last_progress_us: AtomicU64,
}

impl ShardCounters {
    /// Registers shard `shard`'s counters under
    /// `service.worker.<shard>.<field>`.
    pub(crate) fn register(metrics: &MetricsRegistry, shard: usize) -> ShardCounters {
        let c = |field: &str| metrics.counter(&format!("service.worker.{shard}.{field}"));
        ShardCounters {
            reports_applied: c("reports_applied"),
            retrains: c("retrains"),
            batches: c("batches"),
            last_progress_us: AtomicU64::new(0),
        }
    }

    pub(crate) fn mark_progress(&self, now_us: u64) {
        self.last_progress_us.store(now_us, Ordering::Relaxed);
    }
}

/// A point-in-time view of one retrain worker's queue shard.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WorkerShardStats {
    /// The shard index (= worker index; tenants route here by hash).
    pub shard: usize,
    /// Reports waiting in this shard's queue right now.
    pub depth: usize,
    /// Reports this worker has applied.
    pub reports_applied: u64,
    /// Retrains this worker's applies fired.
    pub retrains: u64,
    /// Batches this worker has processed.
    pub batches: u64,
}

/// A point-in-time view of one tenant's counters and snapshot state.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TenantStats {
    /// The tenant id.
    pub tenant: String,
    /// The retrain-worker shard this tenant's reports route to.
    pub worker_shard: usize,
    /// Predictions served from snapshots.
    pub predictions: u64,
    /// Queries executed through the service.
    pub executions: u64,
    /// Run reports accepted into the update queue.
    pub reports_enqueued: u64,
    /// Run reports the worker has applied to the driver.
    pub reports_applied: u64,
    /// Retraining tasks the worker's applies fired.
    pub retrains: u64,
    /// Admission-control rejections (quota or queue-full).
    pub rejections: u64,
    /// Reports whose apply failed in the worker.
    pub apply_failures: u64,
    /// Predictions served from a snapshot older than the configured
    /// `max_snapshot_age` (never shed, only counted).
    pub stale_predictions: u64,
    /// Reports accepted but not yet applied.
    pub pending_reports: usize,
    /// How many snapshots have been published (0 = still the registration
    /// snapshot).
    pub snapshot_generation: u64,
    /// Time since the tenant's snapshot was last (re)published.
    pub snapshot_age: Duration,
    /// Whether `snapshot_age` currently exceeds the configured
    /// `max_snapshot_age` bound (always `false` when the bound is unset).
    pub snapshot_stale: bool,
}

/// A point-in-time view of the whole service.
///
/// Aggregates are read from the service-wide total counters the hot path
/// increments alongside the per-tenant ones, so building this view is a
/// handful of atomic loads — it never walks the tenant registry, and the
/// totals are monotonic across tenant churn by construction.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServiceStats {
    /// Registered tenants.
    pub tenants: usize,
    /// Reports sitting in the update queues right now (all shards).
    pub queue_depth: usize,
    /// Per-worker-shard depths and applied counts (one entry per
    /// configured retrain worker).
    pub worker_shards: Vec<WorkerShardStats>,
    /// Predictions served, all tenants ever.
    pub predictions: u64,
    /// Queries executed, all tenants ever.
    pub executions: u64,
    /// Reports accepted, all tenants ever.
    pub reports_enqueued: u64,
    /// Reports applied, all tenants ever.
    pub reports_applied: u64,
    /// Retrains fired, all tenants ever.
    pub retrains: u64,
    /// Admission-control rejections, all tenants ever.
    pub rejections: u64,
    /// Failed applies, all tenants ever.
    pub apply_failures: u64,
    /// Stale-snapshot predictions, all tenants ever.
    pub stale_predictions: u64,
    /// Snapshot-read (`predict`/`determine`) latency digest.
    pub predict_latency: LatencySummary,
}
