//! The bounded MPSC update queues feeding the retrain workers.
//!
//! `std::sync::mpsc` hides its depth, and the vendored `parking_lot` shim
//! has no `Condvar`, so this is a small purpose-built queue over
//! `std::sync::{Mutex, Condvar}`: non-blocking bounded producers (full is
//! an admission-control rejection, never a stall on the client's hot
//! path), a blocking consumer, an exact [`BoundedQueue::len`] for the
//! queue-depth stat, and close semantics for shutdown (producers are
//! rejected, the consumer drains what is left and then sees end-of-queue).
//!
//! [`ShardedQueue`] splays the service's update traffic across N such
//! queues — one per retrain worker — by tenant hash: every tenant's
//! reports land on exactly one shard (preserving the tenant's FIFO
//! order), while distinct tenants on distinct shards retrain in parallel.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Why a push was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushRejected {
    /// The queue is at capacity.
    Full,
    /// The queue has been closed (service shutting down).
    Closed,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer single-consumer queue.
#[derive(Debug)]
pub(crate) struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Attempts to enqueue without blocking.
    pub(crate) fn try_push(&self, item: T) -> Result<(), PushRejected> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushRejected::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushRejected::Full);
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues, blocking while the queue is full. Only fails once the
    /// queue is closed. For control messages (flush) that must get in
    /// without burning CPU; data producers use the non-blocking
    /// [`BoundedQueue::try_push`] so backpressure stays a rejection.
    pub(crate) fn push_blocking(&self, item: T) -> Result<(), PushRejected> {
        let mut inner = self.lock();
        loop {
            if inner.closed {
                return Err(PushRejected::Closed);
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeues the next item, blocking while the queue is empty. Returns
    /// `None` once the queue is closed *and* drained.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeues up to `n` immediately available items without blocking.
    pub(crate) fn drain_up_to(&self, n: usize) -> Vec<T> {
        let mut inner = self.lock();
        let take = n.min(inner.items.len());
        let items: Vec<T> = inner.items.drain(..take).collect();
        drop(inner);
        if !items.is_empty() {
            self.not_full.notify_all();
        }
        items
    }

    /// Re-enqueues `items` at the *front* of the queue, preserving their
    /// order ahead of everything queued behind them.
    ///
    /// This is the worker-panic rescue path: the items were already
    /// admitted (and counted against capacity/quota) once, so readmission
    /// deliberately ignores the capacity bound — the queue may transiently
    /// exceed it by at most one worker batch — and ignores `closed`, so a
    /// restarted worker can still drain rescued work during shutdown.
    pub(crate) fn requeue_front(&self, items: Vec<T>) {
        if items.is_empty() {
            return;
        }
        let mut inner = self.lock();
        for item in items.into_iter().rev() {
            inner.items.push_front(item);
        }
        drop(inner);
        self.not_empty.notify_all();
    }

    /// Current depth.
    pub(crate) fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub(crate) fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Closes the queue: producers are rejected from now on; the consumer
    /// drains the remaining items and then sees end-of-queue.
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// N tenant-hash-sharded [`BoundedQueue`]s, one per retrain worker.
///
/// The total configured capacity is divided evenly across shards
/// (rounded up, minimum one slot each), so configuring a service for
/// `queue_capacity` reports admits roughly that many regardless of the
/// worker count.
#[derive(Debug)]
pub(crate) struct ShardedQueue<T> {
    shards: Box<[Arc<BoundedQueue<T>>]>,
    shard_capacity: usize,
}

impl<T> ShardedQueue<T> {
    /// Creates `shards` queues sharing `total_capacity` slots.
    pub(crate) fn new(shards: usize, total_capacity: usize) -> Self {
        assert!(shards > 0, "at least one queue shard required");
        let shard_capacity = total_capacity.div_ceil(shards).max(1);
        ShardedQueue {
            shards: (0..shards)
                .map(|_| Arc::new(BoundedQueue::new(shard_capacity)))
                .collect(),
            shard_capacity,
        }
    }

    /// The per-shard capacity (what a `QueueFull` rejection reports).
    pub(crate) fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Number of shards (= retrain workers).
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a tenant hash routes to.
    pub(crate) fn shard_of(&self, tenant_hash: u64) -> usize {
        (tenant_hash as usize) % self.shards.len()
    }

    /// A cloneable handle to one shard (for its worker thread).
    pub(crate) fn shard(&self, idx: usize) -> Arc<BoundedQueue<T>> {
        // lint:allow(panic-free-server-paths, reason = "idx comes from shard_of(), which is modulo shards.len()")
        Arc::clone(&self.shards[idx])
    }

    /// Non-blocking push onto a specific shard.
    pub(crate) fn try_push(&self, shard: usize, item: T) -> Result<(), PushRejected> {
        // lint:allow(panic-free-server-paths, reason = "shard comes from shard_of(), which is modulo shards.len()")
        self.shards[shard].try_push(item)
    }

    /// Blocking push onto a specific shard (control messages only).
    pub(crate) fn push_blocking(&self, shard: usize, item: T) -> Result<(), PushRejected> {
        // lint:allow(panic-free-server-paths, reason = "shard comes from shard_of(), which is modulo shards.len()")
        self.shards[shard].push_blocking(item)
    }

    /// Per-shard depths, indexed by shard.
    pub(crate) fn depths(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// Total reports waiting across all shards.
    pub(crate) fn total_len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether [`ShardedQueue::close`] has been called.
    pub(crate) fn is_closed(&self) -> bool {
        // Shards are only ever closed together, so one speaks for all.
        self.shards[0].is_closed()
    }

    /// Closes every shard.
    pub(crate) fn close(&self) {
        for shard in self.shards.iter() {
            shard.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_fifo_with_backpressure() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushRejected::Full));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.drain_up_to(10), vec![2, 3]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn close_rejects_producers_and_drains_consumer() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_push("b"), Err(PushRejected::Closed));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_blocking_parks_until_space_and_fails_closed() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_blocking(1))
        };
        // The producer is parked on a full queue; popping frees a slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(1));
        q.close();
        assert_eq!(q.push_blocking(2), Err(PushRejected::Closed));
    }

    #[test]
    fn sharded_queue_routes_and_splits_capacity() {
        let q: ShardedQueue<u32> = ShardedQueue::new(4, 10);
        assert_eq!(q.shard_count(), 4);
        assert_eq!(q.shard_capacity(), 3, "10 slots over 4 shards, rounded up");
        // Same hash, same shard, always.
        assert_eq!(q.shard_of(42), q.shard_of(42));
        q.try_push(1, 7).unwrap();
        q.try_push(1, 8).unwrap();
        q.try_push(2, 9).unwrap();
        assert_eq!(q.depths(), vec![0, 2, 1, 0]);
        assert_eq!(q.total_len(), 3);
        q.try_push(1, 10).unwrap();
        assert_eq!(q.try_push(1, 11), Err(PushRejected::Full));
        // Shard 1 is full, but other shards still admit.
        q.try_push(0, 12).unwrap();
        assert!(!q.is_closed());
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_push(3, 13), Err(PushRejected::Closed));
        // Consumers drain what was admitted before the close.
        assert_eq!(q.shard(1).pop(), Some(7));
    }

    #[test]
    fn requeue_front_preserves_order_and_ignores_caps() {
        let q = BoundedQueue::new(2);
        q.try_push(3).unwrap();
        q.try_push(4).unwrap();
        // Rescue two "already admitted" items ahead of the queue, past
        // the capacity bound.
        q.requeue_front(vec![1, 2]);
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        // Rescue still works after close (shutdown-time worker panic);
        // the consumer drains it before seeing end-of-queue.
        q.close();
        q.requeue_front(vec![0]);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_pop_wakes_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(v) = q.pop() {
                    seen.push(v);
                }
                seen
            })
        };
        for i in 0..20 {
            loop {
                match q.try_push(i) {
                    Ok(()) => break,
                    Err(PushRejected::Full) => std::thread::yield_now(),
                    Err(PushRejected::Closed) => unreachable!(),
                }
            }
        }
        q.close();
        let seen = consumer.join().unwrap();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }
}
