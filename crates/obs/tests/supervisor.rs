//! Supervisor behaviour against toy workers: restart-with-backoff,
//! strict fail-fast, retry-budget exhaustion, and clean exits.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use smartpick_obs::{
    EventKind, Observability, RestartPolicy, Supervisor, SupervisorConfig, WorkerState,
};

/// What a toy worker should do next.
#[derive(Debug, Clone, Copy)]
enum Cmd {
    Panic,
    Exit,
}

/// A supervised pool of toy workers, each parked on a shared command
/// channel — `send(Cmd::Panic)` kills exactly one live worker.
struct Rig {
    supervisor: Supervisor,
    obs: Arc<Observability>,
    tx: Sender<Cmd>,
    spawned: Arc<AtomicU64>,
}

fn rig(workers: usize, policy: RestartPolicy) -> Rig {
    let obs = Observability::shared(64);
    let (tx, rx) = channel::<Cmd>();
    let rx = Arc::new(Mutex::new(rx));
    let spawned = Arc::new(AtomicU64::new(0));
    let spawn = {
        let rx = Arc::clone(&rx);
        let spawned = Arc::clone(&spawned);
        Box::new(move |shard: usize, attempt: u64| {
            let rx: Arc<Mutex<Receiver<Cmd>>> = Arc::clone(&rx);
            spawned.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name(format!("toy-{shard}-{attempt}"))
                .spawn(move || {
                    // One command decides this worker's whole life: panic
                    // on demand, or exit cleanly. Bind before matching so
                    // the mutex guard drops first — panicking with it
                    // held would poison the channel for the replacement.
                    let cmd = rx.lock().unwrap().recv();
                    if let Ok(Cmd::Panic) = cmd {
                        panic!("toy worker told to panic")
                    }
                })
                .ok()
        })
    };
    let config = SupervisorConfig {
        policy,
        poll: Duration::from_millis(2),
    };
    let supervisor = Supervisor::start(workers, config, spawn, Arc::clone(&obs), "toy");
    Rig {
        supervisor,
        obs,
        tx,
        spawned,
    }
}

fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn panicked_worker_is_restarted_and_recorded() {
    let mut r = rig(
        1,
        RestartPolicy::Restart {
            max_retries: 3,
            backoff: Duration::from_millis(1),
        },
    );
    assert!(r.supervisor.healthy());
    r.tx.send(Cmd::Panic).unwrap();
    wait_until(|| r.supervisor.restarts() == 1, "the restart");
    wait_until(
        || r.supervisor.status()[0].state == WorkerState::Alive,
        "the slot to come back alive",
    );
    let status = &r.supervisor.status()[0];
    assert_eq!(status.restarts, 1);
    assert_eq!(
        status.last_panic.as_deref(),
        Some("toy worker told to panic")
    );
    assert!(r.supervisor.healthy());
    assert_eq!(r.spawned.load(Ordering::Relaxed), 2, "initial + 1 restart");

    // The incident is on the record: a panic event, a restart event, and
    // both counters.
    let kinds: Vec<EventKind> = r.obs.events().recent(16).iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&EventKind::WorkerPanic));
    assert!(kinds.contains(&EventKind::WorkerRestarted));
    let scrape = r.obs.scrape(0);
    assert_eq!(scrape.counter("toy.panics"), 1);
    assert_eq!(scrape.counter("toy.restarts"), 1);

    // The restarted worker still serves: a clean exit marks it Done.
    r.tx.send(Cmd::Exit).unwrap();
    wait_until(
        || r.supervisor.status()[0].state == WorkerState::Done,
        "the clean exit",
    );
    r.supervisor.shutdown();
}

#[test]
fn strict_policy_fails_the_shard_on_first_panic() {
    let mut r = rig(1, RestartPolicy::Strict);
    r.tx.send(Cmd::Panic).unwrap();
    wait_until(
        || r.supervisor.status()[0].state == WorkerState::Failed,
        "the strict failure",
    );
    assert!(!r.supervisor.healthy());
    assert_eq!(r.supervisor.restarts(), 0);
    assert_eq!(r.spawned.load(Ordering::Relaxed), 1, "no respawn");
    let kinds: Vec<EventKind> = r.obs.events().recent(16).iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&EventKind::WorkerPanic));
    assert!(kinds.contains(&EventKind::WorkerFailed));
    assert!(!kinds.contains(&EventKind::WorkerRestarted));
    r.supervisor.shutdown();
}

#[test]
fn retry_budget_exhaustion_fails_the_shard() {
    let mut r = rig(
        1,
        RestartPolicy::Restart {
            max_retries: 2,
            backoff: Duration::from_millis(1),
        },
    );
    for _ in 0..3 {
        r.tx.send(Cmd::Panic).unwrap();
        // Each panic must be noticed before the next is sent, or a
        // single worker incarnation would absorb several commands.
        let seen = r.obs.events().recent(64).len();
        wait_until(
            || r.obs.events().recent(64).len() > seen,
            "the panic to be processed",
        );
    }
    wait_until(
        || r.supervisor.status()[0].state == WorkerState::Failed,
        "the budget to run out",
    );
    assert_eq!(r.supervisor.restarts(), 2);
    assert!(!r.supervisor.healthy());
    let scrape = r.obs.scrape(0);
    assert_eq!(scrape.counter("toy.panics"), 3);
    assert_eq!(scrape.counter("toy.restarts"), 2);
    r.supervisor.shutdown();
}

#[test]
fn clean_exits_are_done_not_failed_across_many_shards() {
    let mut r = rig(
        3,
        RestartPolicy::Restart {
            max_retries: 1,
            backoff: Duration::from_millis(1),
        },
    );
    for _ in 0..3 {
        r.tx.send(Cmd::Exit).unwrap();
    }
    wait_until(
        || {
            r.supervisor
                .status()
                .iter()
                .all(|s| s.state == WorkerState::Done)
        },
        "all shards to finish",
    );
    assert!(r.supervisor.healthy(), "done is healthy, failed is not");
    assert_eq!(r.supervisor.restarts(), 0);
    r.supervisor.shutdown();
}
