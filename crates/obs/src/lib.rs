//! # smartpick-obs
//!
//! The observability layer for **smartpickd**: the paper's §4.2 monitor
//! thread and §5 serving boundary assume an operator can *see*
//! prediction staleness, retrain pressure, and shed decisions while the
//! system runs. This crate is that seeing apparatus, kept deliberately
//! free of service/wire knowledge so both layers can feed it:
//!
//! * [`metrics`] — a lock-light [`MetricsRegistry`] of named
//!   [`Counter`]s, [`Gauge`]s, and [`LatencyHistogram`]s behind one
//!   [`Metric`] trait. Hot paths hold `Arc`s and update with relaxed
//!   atomics; the registry lock is touched only at registration and
//!   scrape time.
//! * [`events`] — a bounded ring of typed, timestamped [`Event`]s
//!   ([`EventLog`]) with severities, subscriber hooks for tests, and an
//!   optional JSON-line sink.
//! * [`supervise`] — a generic [`Supervisor`] that watches worker
//!   threads and applies a [`RestartPolicy`] when one panics, recording
//!   every transition as events + counters.
//! * [`ScrapeEnvelope`] / [`HealthReport`] — the versioned wire shapes
//!   `Request::Scrape` and `Request::Health` answer with.
//!
//! Everything is built on the vendored shims only (`parking_lot`,
//! `serde`, `serde_json`); counter values ride the shim's f64 JSON
//! number model, so totals above 2⁵³ lose precision on the wire — the
//! same caveat the rest of the protocol carries.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
// Clippy agrees with smartpick-lint's panic-free-server-paths rule:
// non-test code must not panic; exceptions carry an explicit
// `#[allow]` next to their `lint:allow` so both tools share one list.
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod events;
pub mod metrics;
pub mod supervise;

pub use events::{event, Event, EventDraft, EventKind, EventLog, Severity, SubscriberId};
pub use metrics::{
    Counter, Gauge, LatencyHistogram, LatencySummary, Metric, MetricKind, MetricSample,
    MetricValue, MetricsRegistry,
};
pub use supervise::{
    PollFn, RestartPolicy, SpawnFn, Supervisor, SupervisorConfig, WorkerState, WorkerStatus,
};

use std::sync::Arc;

/// The scrape envelope's schema version; bump on breaking shape changes.
pub const SCRAPE_VERSION: u64 = 1;

/// One metrics registry + one event log, bundled so every layer of a
/// process (service, wire server, supervisor) feeds the same scrape.
#[derive(Debug)]
pub struct Observability {
    metrics: MetricsRegistry,
    events: EventLog,
}

impl Observability {
    /// Creates a bundle whose event ring retains `event_capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `event_capacity` is zero.
    pub fn new(event_capacity: usize) -> Self {
        Observability {
            metrics: MetricsRegistry::new(),
            events: EventLog::new(event_capacity),
        }
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The shared event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// One versioned envelope of every metric plus the last `max_events`
    /// events — what `Request::Scrape` answers with.
    pub fn scrape(&self, max_events: usize) -> ScrapeEnvelope {
        let events = self.events().recent(max_events);
        ScrapeEnvelope {
            version: SCRAPE_VERSION,
            at_us: self.events().now_us(),
            metrics: self.metrics.snapshot(),
            events,
        }
    }

    /// A convenience `Arc`d bundle with the given event capacity.
    pub fn shared(event_capacity: usize) -> Arc<Observability> {
        Arc::new(Observability::new(event_capacity))
    }
}

/// The versioned scrape payload: every registered metric (sorted by
/// name) plus the most recent events, stamped with the log's clock.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScrapeEnvelope {
    /// Schema version ([`SCRAPE_VERSION`]).
    pub version: u64,
    /// Scrape time, µs since the event log's creation.
    pub at_us: u64,
    /// Every registered metric, sorted by name.
    pub metrics: Vec<MetricSample>,
    /// The most recent events, oldest first.
    pub events: Vec<Event>,
}

impl ScrapeEnvelope {
    /// The sample named `name`, if scraped.
    pub fn metric(&self, name: &str) -> Option<&MetricSample> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// The counter named `name`, or zero if absent/mistyped — the
    /// ergonomic accessor for dashboards and tests.
    pub fn counter(&self, name: &str) -> u64 {
        match self.metric(name).map(|m| &m.value) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// The gauge named `name`, or zero if absent/mistyped.
    pub fn gauge(&self, name: &str) -> i64 {
        match self.metric(name).map(|m| &m.value) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }
}

/// A point-in-time view of one supervised worker shard, as health
/// reports it.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WorkerHealth {
    /// The worker/queue shard index.
    pub shard: usize,
    /// `"alive"`, `"done"`, or `"failed"` (see [`WorkerState::name`]).
    pub state: String,
    /// Restarts applied to this shard.
    pub restarts: u64,
    /// Whether the shard has queued work but has made no progress within
    /// the configured stall deadline.
    pub stalled: bool,
    /// Reports waiting in this shard's queue right now.
    pub queue_depth: usize,
}

/// What `Request::Health` answers with: liveness (the process is
/// serving), readiness (every retrain worker is alive and no shard is
/// stalled past its deadline), and the per-shard detail behind the
/// verdict.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HealthReport {
    /// The process answered at all (always true in-band; meaningful to
    /// an external prober that also handles connection failure).
    pub live: bool,
    /// All workers alive, no shard stalled.
    pub ready: bool,
    /// Why `ready` is false, one human-readable line each (empty when
    /// ready).
    pub reasons: Vec<String>,
    /// Per-shard detail.
    pub workers: Vec<WorkerHealth>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrape_envelope_bundles_metrics_and_events() {
        let obs = Observability::new(4);
        obs.metrics().counter("service.predictions").add(7);
        obs.metrics().gauge("wire.in_flight").set(2);
        obs.events()
            .publish(event(EventKind::TenantRegistered).tenant("acme"));
        let scrape = obs.scrape(8);
        assert_eq!(scrape.version, SCRAPE_VERSION);
        assert_eq!(scrape.counter("service.predictions"), 7);
        assert_eq!(scrape.gauge("wire.in_flight"), 2);
        assert_eq!(scrape.counter("no.such.metric"), 0);
        assert_eq!(scrape.events.len(), 1);
        assert_eq!(scrape.events[0].tenant.as_deref(), Some("acme"));

        let back: ScrapeEnvelope =
            serde_json::from_str(&serde_json::to_string(&scrape).unwrap()).unwrap();
        assert_eq!(back, scrape);
    }

    #[test]
    fn health_report_serde_round_trips() {
        let report = HealthReport {
            live: true,
            ready: false,
            reasons: vec!["worker shard 1 failed".to_owned()],
            workers: vec![
                WorkerHealth {
                    shard: 0,
                    state: "alive".to_owned(),
                    restarts: 0,
                    stalled: false,
                    queue_depth: 0,
                },
                WorkerHealth {
                    shard: 1,
                    state: "failed".to_owned(),
                    restarts: 3,
                    stalled: false,
                    queue_depth: 5,
                },
            ],
        };
        let back: HealthReport =
            serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
        assert_eq!(back, report);
    }
}
