//! The lock-light metrics registry: named counters, gauges, and
//! fixed-bucket latency histograms behind one [`Metric`] trait.
//!
//! The registry's lock is touched only at registration and scrape time —
//! hot paths hold `Arc`s to the individual metrics and update them with
//! relaxed atomics, so instrumentation never serialises the operations it
//! measures. Names are dot-separated paths; per-tenant metrics live under
//! a `tenant.<id>.` prefix and are dropped wholesale with
//! [`MetricsRegistry::remove_prefix`] when the tenant deregisters (any
//! `Arc` a hot path still holds keeps working — it just stops being
//! scraped).

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use serde::{DeError, Value};

/// Power-of-two microsecond buckets: bucket *i* counts samples in
/// `[2^i, 2^(i+1))` µs. 40 buckets cover ~13 days; plenty for a request.
const BUCKETS: usize = 40;

/// What a metric counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotonically increasing count.
    Counter,
    /// A level that can move both ways (depth, in-flight, high-water).
    Gauge,
    /// A latency distribution digest.
    Histogram,
}

impl MetricKind {
    /// The wire name of this kind.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn parse(s: &str) -> Option<MetricKind> {
        match s {
            "counter" => Some(MetricKind::Counter),
            "gauge" => Some(MetricKind::Gauge),
            "histogram" => Some(MetricKind::Histogram),
            _ => None,
        }
    }
}

/// A metric's point-in-time value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's running total.
    Counter(u64),
    /// A gauge's current level.
    Gauge(i64),
    /// A histogram's digest.
    Histogram(LatencySummary),
}

/// The common face of every registered metric.
pub trait Metric: std::fmt::Debug + Send + Sync {
    /// Which kind of metric this is.
    fn kind(&self) -> MetricKind;
    /// A point-in-time sample of its value.
    fn value(&self) -> MetricValue;
}

/// A monotonically increasing counter (relaxed atomics).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The running total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Metric for Counter {
    fn kind(&self) -> MetricKind {
        MetricKind::Counter
    }

    fn value(&self) -> MetricValue {
        MetricValue::Counter(self.get())
    }
}

/// A signed level (relaxed atomics): queue depth, in-flight requests,
/// high-water marks (via [`Gauge::set_max`]).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Raises the level to `v` if `v` is higher (high-water tracking).
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Metric for Gauge {
    fn kind(&self) -> MetricKind {
        MetricKind::Gauge
    }

    fn value(&self) -> MetricValue {
        MetricValue::Gauge(self.get())
    }
}

/// A fixed-bucket log₂ latency histogram (microsecond resolution).
///
/// Quantiles are read as the *upper bound* of the bucket containing the
/// requested rank, i.e. estimates are conservative and never more than 2×
/// the true value.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        let us = (latency.as_micros() as u64).max(1);
        let idx = (us.ilog2() as usize).min(BUCKETS - 1);
        // lint:allow(panic-free-server-paths, reason = "idx is clamped to BUCKETS - 1 on the previous line")
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) in microseconds — the upper bound
    /// of the bucket holding that rank. Zero when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }

    /// Mean latency in microseconds. Zero when empty.
    pub fn mean_us(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / count as f64
        }
    }

    /// A point-in-time summary (count, p50, p99, mean).
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            p50_us: self.quantile_us(0.50),
            p99_us: self.quantile_us(0.99),
            mean_us: self.mean_us(),
        }
    }
}

impl Metric for LatencyHistogram {
    fn kind(&self) -> MetricKind {
        MetricKind::Histogram
    }

    fn value(&self) -> MetricValue {
        MetricValue::Histogram(self.summary())
    }
}

/// A point-in-time latency digest.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Median, microseconds (bucket upper bound).
    pub p50_us: u64,
    /// 99th percentile, microseconds (bucket upper bound).
    pub p99_us: u64,
    /// Mean, microseconds.
    pub mean_us: f64,
}

/// One scraped metric: name, kind, and value.
///
/// Serialises as `{"name":"...","kind":"counter","value":123}` with the
/// value shape keyed by the kind (histograms carry a summary object).
/// Counter/gauge values ride the shim's f64 number model, so totals above
/// 2⁵³ lose precision on the wire (the same caveat the rest of the
/// protocol carries).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// The dot-separated metric name.
    pub name: String,
    /// What the metric counts.
    pub kind: MetricKind,
    /// Its value at scrape time.
    pub value: MetricValue,
}

impl serde::Serialize for MetricSample {
    fn to_value(&self) -> Value {
        let value = match &self.value {
            MetricValue::Counter(v) => Value::Num(*v as f64),
            MetricValue::Gauge(v) => Value::Num(*v as f64),
            MetricValue::Histogram(s) => s.to_value(),
        };
        Value::Obj(vec![
            ("name".to_owned(), Value::Str(self.name.clone())),
            ("kind".to_owned(), Value::Str(self.kind.name().to_owned())),
            ("value".to_owned(), value),
        ])
    }
}

impl serde::Deserialize for MetricSample {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let pairs = match v {
            Value::Obj(pairs) => pairs.as_slice(),
            other => return Err(DeError(format!("expected metric object, got {other:?}"))),
        };
        let name = match serde::obj_get(pairs, "name")? {
            Value::Str(s) => s.clone(),
            other => return Err(DeError(format!("expected string `name`, got {other:?}"))),
        };
        let kind = match serde::obj_get(pairs, "kind")? {
            Value::Str(s) => {
                MetricKind::parse(s).ok_or_else(|| DeError(format!("unknown metric kind `{s}`")))?
            }
            other => return Err(DeError(format!("expected string `kind`, got {other:?}"))),
        };
        let raw = serde::obj_get(pairs, "value")?;
        let value = match (kind, raw) {
            (MetricKind::Counter, Value::Num(n)) => MetricValue::Counter(*n as u64),
            (MetricKind::Gauge, Value::Num(n)) => MetricValue::Gauge(*n as i64),
            (MetricKind::Histogram, obj) => {
                MetricValue::Histogram(LatencySummary::from_value(obj)?)
            }
            (_, other) => {
                return Err(DeError(format!(
                    "metric value {other:?} does not match kind `{}`",
                    kind.name()
                )))
            }
        };
        Ok(MetricSample { name, kind, value })
    }
}

/// A typed handle to one registered metric.
#[derive(Debug, Clone)]
enum MetricHandle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LatencyHistogram>),
}

impl MetricHandle {
    fn as_metric(&self) -> &dyn Metric {
        match self {
            MetricHandle::Counter(c) => c.as_ref(),
            MetricHandle::Gauge(g) => g.as_ref(),
            MetricHandle::Histogram(h) => h.as_ref(),
        }
    }
}

/// The process-wide name → metric map.
///
/// Get-or-register calls take the write lock only on first registration;
/// repeat lookups take a read lock for a clone. Scrapes ([`snapshot`])
/// walk the map under the read lock but sample each metric with relaxed
/// atomic loads, so they never block a writer for long and never block
/// hot-path increments at all. Registering a name that already exists
/// with a *different* kind returns a fresh detached instance (updated but
/// never scraped) rather than panicking a server thread — a misnamed
/// metric is a bug worth noticing, not worth an outage.
///
/// [`snapshot`]: MetricsRegistry::snapshot
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: RwLock<BTreeMap<String, MetricHandle>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Gets or registers the counter called `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(MetricHandle::Counter(c)) = self.inner.read().get(name) {
            return Arc::clone(c);
        }
        match self.inner.write().entry(name.to_owned()) {
            Entry::Occupied(slot) => match slot.get() {
                MetricHandle::Counter(c) => Arc::clone(c),
                _ => Arc::new(Counter::new()),
            },
            Entry::Vacant(slot) => {
                let c = Arc::new(Counter::new());
                slot.insert(MetricHandle::Counter(Arc::clone(&c)));
                c
            }
        }
    }

    /// Gets or registers the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(MetricHandle::Gauge(g)) = self.inner.read().get(name) {
            return Arc::clone(g);
        }
        match self.inner.write().entry(name.to_owned()) {
            Entry::Occupied(slot) => match slot.get() {
                MetricHandle::Gauge(g) => Arc::clone(g),
                _ => Arc::new(Gauge::new()),
            },
            Entry::Vacant(slot) => {
                let g = Arc::new(Gauge::new());
                slot.insert(MetricHandle::Gauge(Arc::clone(&g)));
                g
            }
        }
    }

    /// Gets or registers the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        if let Some(MetricHandle::Histogram(h)) = self.inner.read().get(name) {
            return Arc::clone(h);
        }
        match self.inner.write().entry(name.to_owned()) {
            Entry::Occupied(slot) => match slot.get() {
                MetricHandle::Histogram(h) => Arc::clone(h),
                _ => Arc::new(LatencyHistogram::new()),
            },
            Entry::Vacant(slot) => {
                let h = Arc::new(LatencyHistogram::new());
                slot.insert(MetricHandle::Histogram(Arc::clone(&h)));
                h
            }
        }
    }

    /// Binds `name` to exactly this counter instance, replacing whatever
    /// was registered there. The identity-keyed half of tenant-churn
    /// metric lifecycles: a registration *installs* its own instances
    /// (after its slot insert succeeds) and its deregistration later
    /// removes only those instances with
    /// [`MetricsRegistry::remove_counter_exact`] — so a concurrent
    /// re-registration of the same name can never have its fresh
    /// counters pruned by the old teardown.
    pub fn install_counter(&self, name: &str, counter: &Arc<Counter>) {
        self.inner
            .write()
            .insert(name.to_owned(), MetricHandle::Counter(Arc::clone(counter)));
    }

    /// Unregisters `name` only if the registered counter is *this
    /// instance* (pointer identity), returning whether it was removed.
    /// See [`MetricsRegistry::install_counter`].
    pub fn remove_counter_exact(&self, name: &str, counter: &Arc<Counter>) -> bool {
        let mut map = self.inner.write();
        match map.get(name) {
            Some(MetricHandle::Counter(c)) if Arc::ptr_eq(c, counter) => {
                map.remove(name);
                true
            }
            _ => false,
        }
    }

    /// Unregisters every metric whose name starts with `prefix` (tenant
    /// teardown), returning how many were removed. Hot paths still
    /// holding `Arc`s keep updating them harmlessly off-registry.
    pub fn remove_prefix(&self, prefix: &str) -> usize {
        let mut map = self.inner.write();
        let doomed: Vec<String> = map
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect();
        for name in &doomed {
            map.remove(name);
        }
        doomed.len()
    }

    /// Registered metric count.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Samples every registered metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        self.inner
            .read()
            .iter()
            .map(|(name, handle)| {
                let m = handle.as_metric();
                MetricSample {
                    name: name.clone(),
                    kind: m.kind(),
                    value: m.value(),
                }
            })
            .collect()
    }

    /// Samples one metric by exact name.
    pub fn sample(&self, name: &str) -> Option<MetricSample> {
        self.inner.read().get(name).map(|handle| {
            let m = handle.as_metric();
            MetricSample {
                name: name.to_owned(),
                kind: m.kind(),
                value: m.value(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_share_state() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("service.predictions");
        let b = reg.counter("service.predictions");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.len(), 1);

        let g = reg.gauge("wire.in_flight");
        g.add(5);
        g.dec();
        g.set_max(3); // below current level: no-op
        assert_eq!(g.get(), 4);
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn kind_clash_returns_detached_instance() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x");
        c.inc();
        let g = reg.gauge("x"); // same name, wrong kind
        g.set(42);
        // The registry still scrapes the original counter.
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].value, MetricValue::Counter(1));
    }

    #[test]
    fn remove_prefix_drops_only_the_scope() {
        let reg = MetricsRegistry::new();
        reg.counter("tenant.a.predictions").inc();
        reg.counter("tenant.ab.predictions").inc();
        reg.counter("tenant.b.predictions").inc();
        reg.counter("service.predictions").inc();
        // `tenant.a.` must not sweep up `tenant.ab.`.
        assert_eq!(reg.remove_prefix("tenant.a."), 1);
        let names: Vec<String> = reg.snapshot().into_iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "service.predictions",
                "tenant.ab.predictions",
                "tenant.b.predictions"
            ]
        );
    }

    #[test]
    fn exact_removal_is_keyed_by_instance_identity() {
        let reg = MetricsRegistry::new();
        let old = Arc::new(Counter::new());
        reg.install_counter("tenant.t.predictions", &old);
        assert!(reg.remove_counter_exact("tenant.t.predictions", &old));
        // Re-install (a re-registration), then try the *old* teardown
        // again: identity mismatch, the fresh instance survives.
        let fresh = Arc::new(Counter::new());
        fresh.add(5);
        reg.install_counter("tenant.t.predictions", &fresh);
        assert!(!reg.remove_counter_exact("tenant.t.predictions", &old));
        assert_eq!(
            reg.sample("tenant.t.predictions").map(|s| s.value),
            Some(MetricValue::Counter(5))
        );
        // Wrong-kind and missing names are no-ops too.
        reg.gauge("g").set(1);
        assert!(!reg.remove_counter_exact("g", &fresh));
        assert!(!reg.remove_counter_exact("missing", &fresh));
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let reg = MetricsRegistry::new();
        reg.histogram("z.latency")
            .record(Duration::from_micros(100));
        reg.counter("a.count").add(7);
        reg.gauge("m.depth").set(-2);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a.count", "m.depth", "z.latency"]);
        assert_eq!(snap[0].value, MetricValue::Counter(7));
        assert_eq!(snap[1].value, MetricValue::Gauge(-2));
        match &snap[2].value {
            MetricValue::Histogram(s) => assert_eq!(s.count, 1),
            other => panic!("wrong value: {other:?}"),
        }
    }

    #[test]
    fn metric_sample_serde_round_trips() {
        let samples = vec![
            MetricSample {
                name: "a".into(),
                kind: MetricKind::Counter,
                value: MetricValue::Counter(9),
            },
            MetricSample {
                name: "b".into(),
                kind: MetricKind::Gauge,
                value: MetricValue::Gauge(-3),
            },
            MetricSample {
                name: "c".into(),
                kind: MetricKind::Histogram,
                value: MetricValue::Histogram(LatencySummary {
                    count: 2,
                    p50_us: 128,
                    p99_us: 256,
                    mean_us: 150.0,
                }),
            },
        ];
        let json = serde_json::to_string(&samples).unwrap();
        let back: Vec<MetricSample> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, samples);
        // A sample whose value shape contradicts its kind is rejected.
        assert!(serde_json::from_str::<MetricSample>(
            "{\"name\":\"x\",\"kind\":\"counter\",\"value\":{}}"
        )
        .is_err());
    }

    #[test]
    fn histogram_quantiles_track_recorded_spread() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // bucket [64, 128)
        }
        h.record(Duration::from_millis(10)); // bucket [8192, 16384)
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.5), 128);
        assert_eq!(h.quantile_us(0.99), 128);
        assert_eq!(h.quantile_us(1.0), 16384);
        assert!(h.mean_us() > 100.0 && h.mean_us() < 300.0);
        assert_eq!(h.summary().p50_us, 128);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.summary(), LatencySummary::default());
    }
}
