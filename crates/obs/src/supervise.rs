//! Worker supervision: detect dead threads, restart per policy.
//!
//! A panic on a background worker thread is otherwise silent — the
//! process stays up while its capacity shrinks one shard at a time. The
//! [`Supervisor`] owns one slot per worker, polls for finished handles
//! from a monitor thread, and on a panic applies the configured
//! [`RestartPolicy`]: respawn with linear backoff up to a retry budget,
//! or fail the shard fast (`Strict`). Every transition is recorded as an
//! event and a counter, so an incident is visible in a scrape and in
//! health long after the thread is gone.
//!
//! The supervisor is deliberately generic: it knows nothing about
//! queues or tenants. The owner supplies a spawn closure `(shard,
//! attempt) -> Option<JoinHandle>`; making restarted workers resume the
//! right work (and not lose any) is the owner's contract — smartpickd
//! does it by re-queueing a panicked worker's unapplied batch before the
//! panic unwinds the worker loop.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::events::{event, EventKind};
use crate::metrics::Counter;
use crate::Observability;

/// What to do when a supervised worker panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartPolicy {
    /// Respawn the worker, waiting `backoff × attempt` between tries, up
    /// to `max_retries` restarts per shard over the supervisor's
    /// lifetime; after that the shard is marked failed.
    Restart {
        /// Restarts allowed per shard before giving up.
        max_retries: u32,
        /// Base delay before a respawn (scaled linearly by attempt).
        backoff: Duration,
    },
    /// Never restart: the first panic marks the shard failed (and the
    /// service unready) — fail-fast for deployments that prefer a crisp
    /// outage over a limping one.
    Strict,
}

/// How a supervised worker slot is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Running (or being respawned right now).
    Alive,
    /// Exited normally (queue closed — shutdown).
    Done,
    /// Dead and not coming back: `Strict` panic, retries exhausted, or a
    /// respawn failure.
    Failed,
}

impl WorkerState {
    /// The wire name of this state.
    pub fn name(self) -> &'static str {
        match self {
            WorkerState::Alive => "alive",
            WorkerState::Done => "done",
            WorkerState::Failed => "failed",
        }
    }
}

/// A point-in-time view of one supervised slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStatus {
    /// The worker/shard index.
    pub shard: usize,
    /// Its current state.
    pub state: WorkerState,
    /// Restarts applied to this shard so far.
    pub restarts: u64,
    /// The last panic message seen on this shard, if any.
    pub last_panic: Option<String>,
}

/// Supervisor tunables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// The per-shard restart policy.
    pub policy: RestartPolicy,
    /// How often the monitor thread checks for finished workers.
    pub poll: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            policy: RestartPolicy::Restart {
                max_retries: 3,
                backoff: Duration::from_millis(50),
            },
            poll: Duration::from_millis(20),
        }
    }
}

/// Spawns (or respawns) worker `shard`; `attempt` is 0 for the initial
/// spawn and counts up per restart. `None` means the spawn failed.
pub type SpawnFn = Box<dyn Fn(usize, u64) -> Option<JoinHandle<()>> + Send + Sync>;

/// A periodic chore the supervisor's monitor thread runs once per poll
/// iteration (see [`Supervisor::start_with_poll_hook`]). Must be cheap
/// relative to the poll interval and must never panic — it runs on the
/// same thread that detects worker panics.
pub type PollFn = Box<dyn Fn() + Send + Sync>;

#[derive(Debug)]
struct Slot {
    handle: Option<JoinHandle<()>>,
    state: WorkerState,
    restarts: u64,
    last_panic: Option<String>,
}

struct Inner {
    slots: Mutex<Vec<Slot>>,
    stop: AtomicBool,
    config: SupervisorConfig,
    spawn: SpawnFn,
    poll_hook: Option<PollFn>,
    obs: Arc<Observability>,
    restarts_total: Arc<Counter>,
    panics_total: Arc<Counter>,
}

/// Supervises a fixed set of worker threads per a [`RestartPolicy`].
pub struct Supervisor {
    inner: Arc<Inner>,
    monitor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("status", &self.status())
            .field("config", &self.inner.config)
            .finish_non_exhaustive()
    }
}

impl Supervisor {
    /// Spawns `workers` workers via `spawn` and a monitor thread watching
    /// them. Restart/panic counters register under
    /// `<metric_prefix>.restarts` / `<metric_prefix>.panics`; slot
    /// transitions publish [`EventKind::WorkerPanic`] /
    /// [`EventKind::WorkerRestarted`] / [`EventKind::WorkerFailed`]
    /// events. A `spawn` that fails (returns `None`, including at initial
    /// spawn) marks its shard [`WorkerState::Failed`] instead of
    /// panicking the caller.
    pub fn start(
        workers: usize,
        config: SupervisorConfig,
        spawn: SpawnFn,
        obs: Arc<Observability>,
        metric_prefix: &str,
    ) -> Supervisor {
        Supervisor::start_with_poll_hook(workers, config, spawn, None, obs, metric_prefix)
    }

    /// [`Supervisor::start`], plus an optional [`PollFn`] the monitor
    /// thread calls once per poll iteration — how owners piggy-back
    /// periodic housekeeping (e.g. smartpickd's tenant-residency sweep)
    /// on the supervisor thread without spawning another one.
    pub fn start_with_poll_hook(
        workers: usize,
        config: SupervisorConfig,
        spawn: SpawnFn,
        poll_hook: Option<PollFn>,
        obs: Arc<Observability>,
        metric_prefix: &str,
    ) -> Supervisor {
        assert!(workers > 0, "at least one supervised worker required");
        let restarts_total = obs.metrics().counter(&format!("{metric_prefix}.restarts"));
        let panics_total = obs.metrics().counter(&format!("{metric_prefix}.panics"));
        let mut slots = Vec::with_capacity(workers);
        for shard in 0..workers {
            match spawn(shard, 0) {
                Some(handle) => slots.push(Slot {
                    handle: Some(handle),
                    state: WorkerState::Alive,
                    restarts: 0,
                    last_panic: None,
                }),
                None => {
                    obs.events()
                        .publish(event(EventKind::WorkerFailed).shard(shard).detail(
                            "initial spawn failed; shard has no worker and the service is unready",
                        ));
                    slots.push(Slot {
                        handle: None,
                        state: WorkerState::Failed,
                        restarts: 0,
                        last_panic: None,
                    });
                }
            }
        }
        let inner = Arc::new(Inner {
            slots: Mutex::new(slots),
            stop: AtomicBool::new(false),
            config,
            spawn,
            poll_hook,
            obs,
            restarts_total,
            panics_total,
        });
        let monitor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("smartpickd-supervisor".to_owned())
                .spawn(move || monitor_loop(&inner))
                .ok()
        };
        if monitor.is_none() {
            // No monitor means panics go undetected; say so loudly once.
            inner
                .obs
                .events()
                .publish(event(EventKind::WorkerFailed).detail(
                    "supervisor monitor thread failed to spawn; worker panics will go undetected",
                ));
        }
        Supervisor { inner, monitor }
    }

    /// A point-in-time view of every slot.
    pub fn status(&self) -> Vec<WorkerStatus> {
        self.inner
            .slots
            .lock()
            .iter()
            .enumerate()
            .map(|(shard, s)| WorkerStatus {
                shard,
                state: s.state,
                restarts: s.restarts,
                last_panic: s.last_panic.clone(),
            })
            .collect()
    }

    /// Whether no shard has been marked [`WorkerState::Failed`].
    pub fn healthy(&self) -> bool {
        self.inner
            .slots
            .lock()
            .iter()
            .all(|s| s.state != WorkerState::Failed)
    }

    /// Total restarts applied across all shards.
    pub fn restarts(&self) -> u64 {
        self.inner.restarts_total.get()
    }

    /// Stops the monitor thread and joins every remaining worker handle.
    ///
    /// The owner must have arranged for workers to exit (smartpickd
    /// closes their queues first) or this blocks until they do.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(monitor) = self.monitor.take() {
            let _ = monitor.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut slots = self.inner.slots.lock();
            slots.iter_mut().filter_map(|s| s.handle.take()).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn monitor_loop(inner: &Inner) {
    loop {
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        if let Some(hook) = &inner.poll_hook {
            hook();
        }
        match take_finished(inner) {
            None => sleep_unless_stopped(inner, inner.config.poll),
            Some((shard, handle, restarts)) => match handle.join() {
                Ok(()) => set_state(inner, shard, WorkerState::Done, None),
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    inner.panics_total.inc();
                    inner
                        .obs
                        .events()
                        .publish(event(EventKind::WorkerPanic).shard(shard).detail(&msg));
                    apply_policy(inner, shard, restarts, msg);
                }
            },
        }
    }
}

/// Takes the first finished-but-unjoined alive slot's handle out (so the
/// join below happens without the slots lock held).
fn take_finished(inner: &Inner) -> Option<(usize, JoinHandle<()>, u64)> {
    let mut slots = inner.slots.lock();
    for (shard, slot) in slots.iter_mut().enumerate() {
        if slot.state == WorkerState::Alive && slot.handle.as_ref().is_some_and(|h| h.is_finished())
        {
            let handle = slot.handle.take()?;
            return Some((shard, handle, slot.restarts));
        }
    }
    None
}

fn apply_policy(inner: &Inner, shard: usize, restarts: u64, msg: String) {
    match inner.config.policy {
        RestartPolicy::Strict => {
            set_state(inner, shard, WorkerState::Failed, Some(msg));
            inner.obs.events().publish(
                event(EventKind::WorkerFailed)
                    .shard(shard)
                    .detail("restart policy is strict; shard stays down"),
            );
        }
        RestartPolicy::Restart {
            max_retries,
            backoff,
        } => {
            if restarts >= u64::from(max_retries) {
                set_state(inner, shard, WorkerState::Failed, Some(msg));
                inner.obs.events().publish(
                    event(EventKind::WorkerFailed)
                        .shard(shard)
                        .detail(format!("restart budget exhausted ({max_retries} retries)")),
                );
                return;
            }
            let attempt = restarts + 1;
            sleep_unless_stopped(inner, backoff.saturating_mul(attempt.min(64) as u32));
            if inner.stop.load(Ordering::Acquire) {
                // Shutting down mid-backoff: the worker is gone and that
                // is fine — the queues are closing anyway.
                set_state(inner, shard, WorkerState::Done, Some(msg));
                return;
            }
            match (inner.spawn)(shard, attempt) {
                Some(handle) => {
                    {
                        let mut slots = inner.slots.lock();
                        if let Some(slot) = slots.get_mut(shard) {
                            slot.handle = Some(handle);
                            slot.restarts = attempt;
                            slot.last_panic = Some(msg);
                            slot.state = WorkerState::Alive;
                        }
                    }
                    inner.restarts_total.inc();
                    inner.obs.events().publish(
                        event(EventKind::WorkerRestarted)
                            .shard(shard)
                            .detail(format!("restart {attempt} of {max_retries}")),
                    );
                }
                None => {
                    set_state(inner, shard, WorkerState::Failed, Some(msg));
                    inner.obs.events().publish(
                        event(EventKind::WorkerFailed)
                            .shard(shard)
                            .detail("respawn failed"),
                    );
                }
            }
        }
    }
}

fn set_state(inner: &Inner, shard: usize, state: WorkerState, last_panic: Option<String>) {
    let mut slots = inner.slots.lock();
    if let Some(slot) = slots.get_mut(shard) {
        slot.state = state;
        if last_panic.is_some() {
            slot.last_panic = last_panic;
        }
    }
}

/// Sleeps `total` in small slices so shutdown stays responsive.
fn sleep_unless_stopped(inner: &Inner, total: Duration) {
    let slice = Duration::from_millis(5);
    let mut remaining = total;
    while !remaining.is_zero() {
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        let step = remaining.min(slice);
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
