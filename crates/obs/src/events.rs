//! The structured event log: a bounded ring of typed, timestamped
//! events, with subscriber hooks and an optional JSON-line sink.
//!
//! Events are the "what happened" channel metrics cannot carry: a
//! counter says *how many* workers panicked, the event says *which shard,
//! when, and why*. The ring is bounded ([`EventLog::new`]'s capacity) so
//! a chatty service can never grow memory without bound — old events are
//! evicted oldest-first and counted in [`EventLog::evicted`].

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use serde::{DeError, Value};

/// How loud an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Routine lifecycle chatter (snapshots, connections).
    Debug,
    /// Notable but healthy (tenant churn, retrains).
    Info,
    /// Degradation a human should eventually look at (sheds, staleness,
    /// restarts).
    Warn,
    /// Something broke (worker panic, shard failed).
    Error,
}

impl Severity {
    /// The wire name of this severity.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses a wire name back into a severity.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "debug" => Some(Severity::Debug),
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A tenant was registered.
    TenantRegistered,
    /// A tenant was deregistered.
    TenantDeregistered,
    /// A tenant's prediction snapshot was republished.
    SnapshotPublished,
    /// A retrain worker started applying a tenant's batch.
    RetrainStarted,
    /// A retrain worker finished applying a tenant's batch (carries the
    /// apply duration).
    RetrainFinished,
    /// Training feedback was shed by admission control.
    FeedbackShed,
    /// A prediction was served from a snapshot past the staleness bound
    /// (emitted once per stale episode, not per prediction).
    StalenessFlagged,
    /// A wire connection was accepted.
    ConnectionOpened,
    /// A wire connection ended (carries its lifetime).
    ConnectionClosed,
    /// A wire request was rejected with a retryable `busy`.
    BusyRejection,
    /// A retrain worker thread panicked.
    WorkerPanic,
    /// The supervisor restarted a panicked worker.
    WorkerRestarted,
    /// The supervisor gave up on a worker shard (policy `Strict`, retries
    /// exhausted, or respawn failure).
    WorkerFailed,
    /// A tenant snapshot was persisted to the store.
    SnapshotPersisted,
    /// Recovery loaded a tenant's snapshot from the store.
    SnapshotLoaded,
    /// Recovery replayed a tenant's WAL records past its snapshot.
    WalReplayed,
    /// A torn (truncated/corrupt) WAL tail was dropped during recovery.
    TornTailDropped,
    /// A corrupt snapshot file was moved aside; recovery fell back to an
    /// older snapshot plus WAL replay.
    SnapshotQuarantined,
    /// A shard WAL was compacted after snapshots made its prefix
    /// redundant.
    WalCompacted,
    /// A tenant could not be recovered (no valid snapshot at any
    /// generation); startup continued without it.
    TenantUnrecoverable,
    /// A store operation failed at runtime (WAL open/append, snapshot
    /// write); the service continues serving without durability for the
    /// affected work.
    StoreDegraded,
    /// A resident tenant was evicted to cold (final snapshot persisted,
    /// forest/driver dropped). Routine capacity management — chatty at
    /// scale, so it defaults to `Debug`.
    TenantEvicted,
    /// A cold tenant was rehydrated from its newest snapshot on first
    /// touch (carries the load duration).
    TenantRehydrated,
}

impl EventKind {
    /// The wire name of this kind.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TenantRegistered => "tenant_registered",
            EventKind::TenantDeregistered => "tenant_deregistered",
            EventKind::SnapshotPublished => "snapshot_published",
            EventKind::RetrainStarted => "retrain_started",
            EventKind::RetrainFinished => "retrain_finished",
            EventKind::FeedbackShed => "feedback_shed",
            EventKind::StalenessFlagged => "staleness_flagged",
            EventKind::ConnectionOpened => "connection_opened",
            EventKind::ConnectionClosed => "connection_closed",
            EventKind::BusyRejection => "busy_rejection",
            EventKind::WorkerPanic => "worker_panic",
            EventKind::WorkerRestarted => "worker_restarted",
            EventKind::WorkerFailed => "worker_failed",
            EventKind::SnapshotPersisted => "snapshot_persisted",
            EventKind::SnapshotLoaded => "snapshot_loaded",
            EventKind::WalReplayed => "wal_replayed",
            EventKind::TornTailDropped => "torn_tail_dropped",
            EventKind::SnapshotQuarantined => "snapshot_quarantined",
            EventKind::WalCompacted => "wal_compacted",
            EventKind::TenantUnrecoverable => "tenant_unrecoverable",
            EventKind::StoreDegraded => "store_degraded",
            EventKind::TenantEvicted => "tenant_evicted",
            EventKind::TenantRehydrated => "tenant_rehydrated",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn parse(s: &str) -> Option<EventKind> {
        match s {
            "tenant_registered" => Some(EventKind::TenantRegistered),
            "tenant_deregistered" => Some(EventKind::TenantDeregistered),
            "snapshot_published" => Some(EventKind::SnapshotPublished),
            "retrain_started" => Some(EventKind::RetrainStarted),
            "retrain_finished" => Some(EventKind::RetrainFinished),
            "feedback_shed" => Some(EventKind::FeedbackShed),
            "staleness_flagged" => Some(EventKind::StalenessFlagged),
            "connection_opened" => Some(EventKind::ConnectionOpened),
            "connection_closed" => Some(EventKind::ConnectionClosed),
            "busy_rejection" => Some(EventKind::BusyRejection),
            "worker_panic" => Some(EventKind::WorkerPanic),
            "worker_restarted" => Some(EventKind::WorkerRestarted),
            "worker_failed" => Some(EventKind::WorkerFailed),
            "snapshot_persisted" => Some(EventKind::SnapshotPersisted),
            "snapshot_loaded" => Some(EventKind::SnapshotLoaded),
            "wal_replayed" => Some(EventKind::WalReplayed),
            "torn_tail_dropped" => Some(EventKind::TornTailDropped),
            "snapshot_quarantined" => Some(EventKind::SnapshotQuarantined),
            "wal_compacted" => Some(EventKind::WalCompacted),
            "tenant_unrecoverable" => Some(EventKind::TenantUnrecoverable),
            "store_degraded" => Some(EventKind::StoreDegraded),
            "tenant_evicted" => Some(EventKind::TenantEvicted),
            "tenant_rehydrated" => Some(EventKind::TenantRehydrated),
            _ => None,
        }
    }

    /// The severity this kind is published at unless overridden.
    pub fn default_severity(self) -> Severity {
        match self {
            EventKind::SnapshotPublished
            | EventKind::RetrainStarted
            | EventKind::ConnectionOpened
            | EventKind::ConnectionClosed => Severity::Debug,
            EventKind::TenantRegistered
            | EventKind::TenantDeregistered
            | EventKind::RetrainFinished => Severity::Info,
            EventKind::FeedbackShed
            | EventKind::StalenessFlagged
            | EventKind::BusyRejection
            | EventKind::WorkerRestarted
            | EventKind::TornTailDropped
            | EventKind::SnapshotQuarantined => Severity::Warn,
            EventKind::WorkerPanic
            | EventKind::WorkerFailed
            | EventKind::TenantUnrecoverable
            | EventKind::StoreDegraded => Severity::Error,
            EventKind::SnapshotPersisted
            | EventKind::WalCompacted
            | EventKind::TenantEvicted
            | EventKind::TenantRehydrated => Severity::Debug,
            EventKind::SnapshotLoaded | EventKind::WalReplayed => Severity::Info,
        }
    }
}

/// One published event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic sequence number (1-based, gap-free per log).
    pub seq: u64,
    /// Microseconds since the log's creation.
    pub at_us: u64,
    /// How loud.
    pub severity: Severity,
    /// What happened.
    pub kind: EventKind,
    /// The tenant involved, if any.
    pub tenant: Option<String>,
    /// The worker/queue shard involved, if any.
    pub shard: Option<u64>,
    /// How long it took, if the kind carries a duration.
    pub duration_us: Option<u64>,
    /// Free-form context (panic message, shed reason, peer address).
    pub detail: Option<String>,
}

impl serde::Serialize for Event {
    fn to_value(&self) -> Value {
        let mut m = vec![
            ("seq".to_owned(), Value::Num(self.seq as f64)),
            ("at_us".to_owned(), Value::Num(self.at_us as f64)),
            (
                "severity".to_owned(),
                Value::Str(self.severity.name().to_owned()),
            ),
            ("kind".to_owned(), Value::Str(self.kind.name().to_owned())),
        ];
        if let Some(t) = &self.tenant {
            m.push(("tenant".to_owned(), Value::Str(t.clone())));
        }
        if let Some(s) = self.shard {
            m.push(("shard".to_owned(), Value::Num(s as f64)));
        }
        if let Some(d) = self.duration_us {
            m.push(("duration_us".to_owned(), Value::Num(d as f64)));
        }
        if let Some(d) = &self.detail {
            m.push(("detail".to_owned(), Value::Str(d.clone())));
        }
        Value::Obj(m)
    }
}

/// Looks an optional field up without treating absence as an error.
fn opt<'a>(pairs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn req_num(pairs: &[(String, Value)], key: &str) -> Result<u64, DeError> {
    match serde::obj_get(pairs, key)? {
        Value::Num(n) => Ok(*n as u64),
        other => Err(DeError(format!("expected number `{key}`, got {other:?}"))),
    }
}

fn req_str<'a>(pairs: &'a [(String, Value)], key: &str) -> Result<&'a str, DeError> {
    match serde::obj_get(pairs, key)? {
        Value::Str(s) => Ok(s),
        other => Err(DeError(format!("expected string `{key}`, got {other:?}"))),
    }
}

impl serde::Deserialize for Event {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let pairs = match v {
            Value::Obj(pairs) => pairs.as_slice(),
            other => return Err(DeError(format!("expected event object, got {other:?}"))),
        };
        let severity = req_str(pairs, "severity")?;
        let kind = req_str(pairs, "kind")?;
        Ok(Event {
            seq: req_num(pairs, "seq")?,
            at_us: req_num(pairs, "at_us")?,
            severity: Severity::parse(severity)
                .ok_or_else(|| DeError(format!("unknown severity `{severity}`")))?,
            kind: EventKind::parse(kind)
                .ok_or_else(|| DeError(format!("unknown event kind `{kind}`")))?,
            tenant: match opt(pairs, "tenant") {
                Some(Value::Str(s)) => Some(s.clone()),
                _ => None,
            },
            shard: match opt(pairs, "shard") {
                Some(Value::Num(n)) => Some(*n as u64),
                _ => None,
            },
            duration_us: match opt(pairs, "duration_us") {
                Some(Value::Num(n)) => Some(*n as u64),
                _ => None,
            },
            detail: match opt(pairs, "detail") {
                Some(Value::Str(s)) => Some(s.clone()),
                _ => None,
            },
        })
    }
}

/// A not-yet-published event: what the emitter knows, minus the sequence
/// number and timestamp the log stamps on.
#[derive(Debug, Clone)]
pub struct EventDraft {
    kind: EventKind,
    severity: Severity,
    tenant: Option<String>,
    shard: Option<u64>,
    duration_us: Option<u64>,
    detail: Option<String>,
}

/// Starts an [`EventDraft`] for `kind` at its default severity.
pub fn event(kind: EventKind) -> EventDraft {
    EventDraft {
        kind,
        severity: kind.default_severity(),
        tenant: None,
        shard: None,
        duration_us: None,
        detail: None,
    }
}

impl EventDraft {
    /// Overrides the default severity.
    pub fn severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// Names the tenant involved.
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Names the shard involved.
    pub fn shard(mut self, shard: usize) -> Self {
        self.shard = Some(shard as u64);
        self
    }

    /// Attaches a duration.
    pub fn duration(mut self, d: Duration) -> Self {
        self.duration_us = Some(d.as_micros() as u64);
        self
    }

    /// Attaches free-form context.
    pub fn detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = Some(detail.into());
        self
    }
}

/// An attached subscriber's handle (see [`EventLog::subscribe`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscriberId(u64);

type SubscriberFn = Box<dyn Fn(&Event) + Send + Sync>;

/// The bounded, subscribable event ring.
pub struct EventLog {
    ring: Mutex<VecDeque<Event>>,
    capacity: usize,
    seq: AtomicU64,
    evicted: AtomicU64,
    epoch: Instant,
    subscribers: RwLock<Vec<(u64, SubscriberFn)>>,
    next_subscriber: AtomicU64,
    json_sink: Mutex<Option<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("capacity", &self.capacity)
            .field("published", &self.seq.load(Ordering::Relaxed))
            .field("evicted", &self.evicted.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl EventLog {
    /// Creates a log retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a ring that retains nothing is a
    /// config error, caught at startup).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event log capacity must be positive");
        EventLog {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity,
            seq: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            epoch: Instant::now(),
            subscribers: RwLock::new(Vec::new()),
            next_subscriber: AtomicU64::new(1),
            json_sink: Mutex::new(None),
        }
    }

    /// Stamps and publishes `draft`: into the ring, to every subscriber
    /// (synchronously — keep callbacks cheap), and to the JSON sink if
    /// one is attached. Returns the event's sequence number.
    pub fn publish(&self, draft: EventDraft) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let e = Event {
            seq,
            at_us: self.epoch.elapsed().as_micros() as u64,
            severity: draft.severity,
            kind: draft.kind,
            tenant: draft.tenant,
            shard: draft.shard,
            duration_us: draft.duration_us,
            detail: draft.detail,
        };
        {
            let mut ring = self.ring.lock();
            if ring.len() >= self.capacity {
                ring.pop_front();
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
            ring.push_back(e.clone());
        }
        for (_, f) in self.subscribers.read().iter() {
            f(&e);
        }
        {
            let mut sink = self.json_sink.lock();
            if let Some(w) = sink.as_mut() {
                if let Ok(mut line) = serde_json::to_string(&e) {
                    line.push('\n');
                    // Sink errors are swallowed: observability must never
                    // take the observed path down. The mutex exists to
                    // keep lines whole; the sink is expected to be a
                    // local file or buffer, not a socket.
                    // lint:allow(guard-across-blocking, reason = "the sink guard exists to serialise whole lines; sinks are local files/buffers by contract, documented on attach_json_sink")
                    let _ = w.write_all(line.as_bytes());
                }
            }
        }
        seq
    }

    /// The last `max` events, oldest first.
    pub fn recent(&self, max: usize) -> Vec<Event> {
        let ring = self.ring.lock();
        let skip = ring.len().saturating_sub(max);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Every retained event with a sequence number greater than `seq`,
    /// oldest first (cursor-style polling).
    pub fn since(&self, seq: u64) -> Vec<Event> {
        self.ring
            .lock()
            .iter()
            .filter(|e| e.seq > seq)
            .cloned()
            .collect()
    }

    /// Microseconds since the log's creation — the clock every event's
    /// `at_us` is stamped with.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Events published over the log's lifetime (including evicted ones).
    pub fn published(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events evicted from the ring to stay within capacity.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Attaches `f`, called synchronously on every subsequent publish.
    /// Tests hang assertions here; production subscribers must be cheap
    /// and must not publish events themselves (the ring lock is not held
    /// during callbacks, but the subscriber list's read lock is).
    pub fn subscribe(&self, f: impl Fn(&Event) + Send + Sync + 'static) -> SubscriberId {
        let id = self.next_subscriber.fetch_add(1, Ordering::Relaxed);
        self.subscribers.write().push((id, Box::new(f)));
        SubscriberId(id)
    }

    /// Detaches a subscriber. Unknown ids are ignored.
    pub fn unsubscribe(&self, id: SubscriberId) {
        self.subscribers.write().retain(|(sid, _)| *sid != id.0);
    }

    /// Attaches a JSON-line sink: every subsequent event is written as
    /// one `serde_json` line. The sink should be a local file or buffer —
    /// writes happen inline on the publishing thread and errors are
    /// swallowed. Replaces any previous sink.
    pub fn attach_json_sink(&self, sink: Box<dyn Write + Send>) {
        *self.json_sink.lock() = Some(sink);
    }

    /// Detaches the JSON sink, returning it (so callers can flush/close).
    pub fn detach_json_sink(&self) -> Option<Box<dyn Write + Send>> {
        self.json_sink.lock().take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn ring_is_bounded_and_seq_is_gap_free() {
        let log = EventLog::new(3);
        for _ in 0..5 {
            log.publish(event(EventKind::SnapshotPublished).tenant("t"));
        }
        assert_eq!(log.published(), 5);
        assert_eq!(log.evicted(), 2);
        let recent = log.recent(10);
        assert_eq!(
            recent.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert_eq!(log.recent(2).len(), 2);
        assert_eq!(log.since(4).len(), 1);
    }

    #[test]
    fn subscribers_see_every_publish_until_detached() {
        let log = EventLog::new(8);
        let seen = Arc::new(AtomicUsize::new(0));
        let id = {
            let seen = Arc::clone(&seen);
            log.subscribe(move |e| {
                assert_eq!(e.kind, EventKind::FeedbackShed);
                seen.fetch_add(1, Ordering::Relaxed);
            })
        };
        log.publish(event(EventKind::FeedbackShed));
        log.publish(event(EventKind::FeedbackShed));
        log.unsubscribe(id);
        log.publish(event(EventKind::FeedbackShed));
        assert_eq!(seen.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn json_sink_gets_one_parseable_line_per_event() {
        struct VecSink(Arc<parking_lot::Mutex<Vec<u8>>>);
        impl Write for VecSink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let log = EventLog::new(8);
        log.attach_json_sink(Box::new(VecSink(Arc::clone(&buf))));
        log.publish(event(EventKind::WorkerPanic).shard(1).detail("boom"));
        log.publish(event(EventKind::WorkerRestarted).shard(1));
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: Event = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first.kind, EventKind::WorkerPanic);
        assert_eq!(first.severity, Severity::Error);
        assert_eq!(first.shard, Some(1));
        assert_eq!(first.detail.as_deref(), Some("boom"));
        assert!(log.detach_json_sink().is_some());
        assert!(log.detach_json_sink().is_none());
    }

    #[test]
    fn event_serde_round_trips_with_and_without_options() {
        let log = EventLog::new(4);
        log.publish(
            event(EventKind::RetrainFinished)
                .tenant("acme")
                .shard(2)
                .duration(Duration::from_micros(450))
                .detail("3 reports"),
        );
        log.publish(event(EventKind::TenantRegistered).severity(Severity::Debug));
        for e in log.recent(4) {
            let back: Event = serde_json::from_str(&serde_json::to_string(&e).unwrap()).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn every_kind_name_round_trips() {
        for kind in [
            EventKind::TenantRegistered,
            EventKind::TenantDeregistered,
            EventKind::SnapshotPublished,
            EventKind::RetrainStarted,
            EventKind::RetrainFinished,
            EventKind::FeedbackShed,
            EventKind::StalenessFlagged,
            EventKind::ConnectionOpened,
            EventKind::ConnectionClosed,
            EventKind::BusyRejection,
            EventKind::WorkerPanic,
            EventKind::WorkerRestarted,
            EventKind::WorkerFailed,
            EventKind::SnapshotPersisted,
            EventKind::SnapshotLoaded,
            EventKind::WalReplayed,
            EventKind::TornTailDropped,
            EventKind::SnapshotQuarantined,
            EventKind::WalCompacted,
            EventKind::TenantUnrecoverable,
            EventKind::StoreDegraded,
            EventKind::TenantEvicted,
            EventKind::TenantRehydrated,
        ] {
            assert_eq!(EventKind::parse(kind.name()), Some(kind));
            let _ = kind.default_severity();
        }
        for sev in [
            Severity::Debug,
            Severity::Info,
            Severity::Warn,
            Severity::Error,
        ] {
            assert_eq!(Severity::parse(sev.name()), Some(sev));
        }
        assert!(Severity::Warn > Severity::Info);
    }
}
